"""Fleet integration: shard map, bit-identity, chaos, protocol fallback.

The acceptance bar for the sharded fleet:

* the consistent-hash shard map is deterministic across processes and
  stable under resize (only the removed worker's keys move);
* binary.v1 and line-JSON answers are bit-identical through the router
  for every (fn, format) pair of the family;
* killing one worker degrades exactly that shard — its breaker trips,
  other shards keep serving, and ``health`` reports the degraded worker;
* a client reconnecting to a server that no longer speaks binary.v1
  falls back to JSON and replays, invisibly to the caller.
"""

import socket
import struct

import numpy as np
import pytest

from repro.fp import all_finite
from repro.funcs import TINY_CONFIG
from repro.mp.oracle import FUNCTION_NAMES
from repro.serve import (
    FleetThread,
    ServeClient,
    ServerThread,
    ServingRegistry,
)
from repro.serve.fleet import WORKER_FAILURE_THRESHOLD
from repro.serve.frames import PROTOCOL_NAME
from repro.serve.hashring import HashRing, ShardMap
from repro.serve.protocol import ProtocolError

N_WORKERS = 2


# ----------------------------------------------------------------------
# Shard map / hash ring (pure, no processes)
# ----------------------------------------------------------------------
class TestShardMap:
    def test_deterministic_across_instances(self):
        # Two independently built maps (as in two different processes)
        # must agree on every key, or router and worker disagree on who
        # owns an artifact.
        a = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 4)
        b = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 4)
        for fn in FUNCTION_NAMES:
            for level in range(TINY_CONFIG.levels):
                assert a.worker_for(fn, level) == b.worker_for(fn, level)
        assert a.describe() == b.describe()

    def test_primary_partition_is_exact(self):
        # primary_keys_for over all workers is a disjoint cover of the
        # key space (replicas ride on top; primaries still partition).
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 3)
        seen = []
        for w in range(3):
            keys = m.primary_keys_for(w)
            assert all(m.worker_for(fn, level) == w for fn, level in keys)
            seen.extend(keys)
        want = {
            (fn, level)
            for fn in FUNCTION_NAMES
            for level in range(TINY_CONFIG.levels)
        }
        assert len(seen) == len(want)
        assert set(seen) == want

    def test_keys_for_is_replica_membership(self):
        # keys_for(w) is exactly the keys whose owner chain contains w,
        # and every key appears on `replication` distinct workers.
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 3, replication=2)
        per_key = {}
        for w in range(3):
            for key in m.keys_for(w):
                per_key.setdefault(key, []).append(w)
        for (fn, level), members in per_key.items():
            owners = m.workers_for(fn, level)
            assert len(owners) == 2
            assert sorted(members) == sorted(owners)

    def test_names_for_covers_owned_levels(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 3)
        for w in range(3):
            assert set(m.names_for(w)) == {fn for fn, _ in m.keys_for(w)}

    def test_single_worker_owns_everything(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 1)
        assert m.names_for(0) == tuple(sorted(FUNCTION_NAMES))
        assert len(m.keys_for(0)) == len(FUNCTION_NAMES) * TINY_CONFIG.levels

    def test_unknown_key_raises(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 2)
        with pytest.raises(KeyError):
            m.worker_for("nope", 0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 0)

    def test_zero_replication_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 2, replication=0)

    def test_replication_clamped_to_worker_count(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 2, replication=5)
        assert m.replication == 2

    def test_primary_and_replica_never_colocate(self):
        # The whole point of a replica is surviving its primary's death:
        # every key's owner chain must be distinct workers.
        for n in (2, 3, 5):
            m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, n, replication=2)
            for fn in FUNCTION_NAMES:
                for level in range(TINY_CONFIG.levels):
                    owners = m.workers_for(fn, level)
                    assert len(owners) == len(set(owners)) == 2

    def test_roles_cover_loaded_functions(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 3, replication=2)
        for w in range(3):
            roles = m.roles_for(w)
            assert set(roles) == set(m.names_for(w))
            assert set(roles.values()) <= {"primary", "replica", "mixed"}

    def test_describe_replicas_consistent_with_assignment(self):
        m = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, 3, replication=2)
        d = m.describe()
        assert d["replication"] == 2
        for key, primary in d["assignment"].items():
            assert d["replicas"][key][0] == primary
            assert len(d["replicas"][key]) == 2


class TestHashRing:
    def test_removal_only_remaps_removed_nodes_keys(self):
        # The consistent-hashing contract: shrinking the fleet by one
        # moves only the departed node's keys.
        keys = [f"{fn}|{level}" for fn in FUNCTION_NAMES for level in range(8)]
        ring = HashRing([f"w{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("w2")
        for k, owner in before.items():
            if owner != "w2":
                assert ring.node_for(k) == owner
            else:
                assert ring.node_for(k) != "w2"

    def test_addition_is_inverse_of_removal(self):
        keys = [f"k{i}" for i in range(200)]
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.node_for(k) for k in keys} == before

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([]).node_for("k")

    def test_replica_sets_are_distinct_and_primary_first(self):
        ring = HashRing([f"w{i}" for i in range(5)])
        for i in range(100):
            owners = ring.nodes_for(f"k{i}", 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.node_for(f"k{i}")

    def test_nodes_for_clamps_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.nodes_for("k", 5)) == 2

    def test_removal_only_remaps_removed_nodes_replica_sets(self):
        # The replicated consistent-hashing contract: removing a worker
        # leaves every replica set it was NOT a member of untouched, and
        # survivors in affected sets keep their relative order.
        keys = [f"k{i}" for i in range(300)]
        ring = HashRing([f"w{i}" for i in range(5)])
        before = {k: ring.nodes_for(k, 2) for k in keys}
        ring.remove("w3")
        for k, owners in before.items():
            after = ring.nodes_for(k, 2)
            if "w3" not in owners:
                assert after == owners
            else:
                assert "w3" not in after
                survivors = [n for n in owners if n != "w3"]
                # surviving members keep their relative order and stay
                # in the set (the walk only ever appends past them)
                assert [n for n in after if n in survivors] == survivors


# ----------------------------------------------------------------------
# Live fleet (router + worker processes)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet():
    with FleetThread("tiny", n_workers=N_WORKERS, batch_window=0.0) as srv:
        yield srv


def _value_bits(values):
    """IEEE-754 bytes per value: NaN-safe bit-exact comparison."""
    return [struct.pack("<d", float(v)) for v in values]


def test_fleet_serves_every_function(fleet):
    with ServeClient("127.0.0.1", fleet.port) as c:
        info = c.info()
        assert sorted(info["functions"]) == sorted(FUNCTION_NAMES)
        assert info["missing"] == []
        assert info["fleet"]["workers"] == N_WORKERS
        # The router's advertised assignment is the locally computable one.
        local = ShardMap(FUNCTION_NAMES, TINY_CONFIG.levels, N_WORKERS)
        assert info["fleet"]["assignment"] == local.describe()["assignment"]


def test_binary_and_json_bit_identical_every_fn_and_format(fleet):
    # The ISSUE acceptance bar: for every (fn, format) pair, the same
    # inputs through the binary.v1 and line-JSON protocols must answer
    # with identical bit patterns, values and tiers.
    with ServeClient("127.0.0.1", fleet.port, protocol="binary") as cb, \
         ServeClient("127.0.0.1", fleet.port, protocol="json") as cj:
        assert cb.protocol == PROTOCOL_NAME
        assert cj.protocol == "json"
        for fmt in TINY_CONFIG.formats:
            xs = [v.to_float() for v in all_finite(fmt)]
            xs += [float("inf"), float("-inf"), float("nan")]
            for fn in FUNCTION_NAMES:
                rb = cb.eval(fn, np.array(xs), fmt=fmt.display_name)
                rj = cj.eval(fn, xs, fmt=fmt.display_name)
                assert rb["ok"] and rj["ok"], (fn, fmt, rb, rj)
                assert rb["bits"] == rj["bits"], (fn, fmt.display_name)
                assert rb["tiers"] == rj["tiers"], (fn, fmt.display_name)
                assert _value_bits(rb["values"]) == _value_bits(rj["values"])


def test_fleet_health_ok_and_per_worker(fleet):
    with ServeClient("127.0.0.1", fleet.port) as c:
        h = c.health()
        assert h["status"] == "ok"
        assert len(h["workers"]) == N_WORKERS
        for row in h["workers"]:
            assert row["status"] == "ok" and row["alive"]
            assert row["breaker"]["state"] == "closed"


def test_fleet_stats_aggregate_workers(fleet):
    with ServeClient("127.0.0.1", fleet.port) as c:
        assert c.eval("exp2", [1.0], fmt="t8")["ok"]
        stats = c.stats()
        assert len(stats["workers"]) == N_WORKERS
        assert stats["shards"]["workers"] == N_WORKERS
        # Per-fn accounting lives in the worker that owns the shard.
        worker_requests = sum(
            (row.get("stats") or {}).get("requests_by_fn", {}).get("exp2", 0)
            for row in stats["workers"]
        )
        assert worker_requests >= 1


def test_unknown_function_fails_fast(fleet):
    with ServeClient("127.0.0.1", fleet.port) as c:
        resp = c.eval("not_a_function", [1.0], fmt="t8")
        assert resp["ok"] is False
        assert "unknown function" in resp["error"]


def test_killing_one_worker_degrades_only_its_shard():
    # Chaos drill (own fleet: it ends with a dead worker).  SIGKILL one
    # worker mid-service: requests to its shard answer
    # ``worker_unavailable`` and trip *its* breaker; the other shard
    # keeps answering; health drops to ``degraded``, not ``down``.
    # replication=1 + supervise=False pins the *unreplicated* fleet's
    # degradation contract — the self-healing paths have their own suite
    # (test_selfheal.py).
    with FleetThread(
        "tiny", n_workers=2, batch_window=0.0, replication=1, supervise=False
    ) as srv:
        router = srv.server
        victim, survivor = router.workers
        vfn, vlevel = victim.keys[0]
        sfn, slevel = survivor.keys[0]
        with ServeClient("127.0.0.1", srv.port) as c:
            assert c.eval(vfn, [1.0], level=vlevel)["ok"]
            assert c.eval(sfn, [1.0], level=slevel)["ok"]

            victim.process.kill()
            victim.process.join(10)
            assert not victim.alive

            codes = set()
            for _ in range(WORKER_FAILURE_THRESHOLD + 2):
                resp = c.eval(vfn, [1.0], level=vlevel)
                assert resp["ok"] is False
                codes.add(resp.get("code"))
            assert codes == {"worker_unavailable"}
            assert victim.breaker.snapshot()["state"] != "closed"

            # The surviving shard never noticed.
            assert survivor.breaker.snapshot()["state"] == "closed"
            resp = c.eval(sfn, [1.0] * 64, level=slevel)
            assert resp["ok"]

            h = c.health()
            assert h["status"] == "degraded"
            by_worker = {row["worker"]: row for row in h["workers"]}
            assert by_worker[victim.index]["status"] in ("down", "degraded")
            assert not by_worker[victim.index]["alive"]
            assert by_worker[survivor.index]["status"] == "ok"


# ----------------------------------------------------------------------
# Protocol fallback on reconnect (satellite: rolling-downgrade drill)
# ----------------------------------------------------------------------
def _reserve_port() -> int:
    """An ephemeral port number that is free right now."""
    with socket.socket() as s:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_reconnect_renegotiates_down_to_json():
    # A binary.v1 session whose server is replaced by a pre-binary build
    # on the same port: the client reconnects, renegotiates, falls back
    # to line JSON, and replays — the caller just sees answers.
    registry = ServingRegistry("tiny", names=("exp2",))
    port = _reserve_port()
    first = ServerThread(registry, port=port, batch_window=0.0).start()
    client = None
    second = None
    try:
        client = ServeClient("127.0.0.1", port, reconnect_backoff=0.2)
        assert client.protocol == PROTOCOL_NAME
        before = client.eval("exp2", np.array([1.0, 2.0]), fmt="t8")
        assert before["ok"]

        first.stop()
        first = None
        second = ServerThread(
            registry, port=port, batch_window=0.0, binary=False
        ).start()

        after = client.eval("exp2", np.array([1.0, 2.0]), fmt="t8")
        assert after["ok"]
        assert after["bits"] == before["bits"]
        assert client.protocol == "json"
        assert client.reconnects >= 1
    finally:
        if client is not None:
            client.close()
        if first is not None:
            first.stop()
        if second is not None:
            second.stop()


def test_auto_client_stays_json_against_old_server():
    # ``binary=False`` simulates a server that predates the frames
    # module: negotiate answers ``unknown op`` and auto-mode clients
    # just keep speaking line JSON.
    registry = ServingRegistry("tiny", names=("exp2",))
    with ServerThread(registry, batch_window=0.0, binary=False) as srv:
        with pytest.raises(ProtocolError):
            ServeClient("127.0.0.1", srv.port, protocol="binary")
        with ServeClient("127.0.0.1", srv.port) as c:
            assert c.protocol == "json"
            resp = c.eval("exp2", [3.0], fmt="t8")
            assert resp["ok"] and resp["values"] == [8.0]
