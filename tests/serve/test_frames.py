"""Property/fuzz tests for the ``binary.v1`` frame codec.

The binary protocol's whole promise is bit-exactness: whatever doubles
go in — NaN payloads, signed zeros, subnormals — the same bit patterns
come out of ``np.frombuffer`` on the other side.  These tests round-trip
the codec over adversarial payloads and assert that malformed frames
fail as :class:`FrameError`, never as a crash or a silent misparse.
"""

import io
import math
import random
import struct

import numpy as np
import pytest

from repro.serve.frames import (
    FRAME_EVAL,
    FRAME_JSON,
    FRAME_RESULT,
    HEADER,
    MAGIC,
    MAX_FRAME,
    TIER_CODES,
    TIER_NAMES,
    VERSION,
    FrameError,
    decode_eval_request,
    decode_eval_result,
    decode_header,
    decode_json_frame,
    encode_eval_request,
    encode_eval_result,
    encode_frame,
    encode_json_frame,
    read_frame_sync,
)

#: Doubles whose bit patterns must survive the wire untouched.
SPECIAL_BITS = [
    0x0000000000000000,  # +0.0
    0x8000000000000000,  # -0.0
    0x0000000000000001,  # smallest positive subnormal
    0x800FFFFFFFFFFFFF,  # largest-magnitude negative subnormal
    0x7FEFFFFFFFFFFFFF,  # max finite
    0x7FF0000000000000,  # +inf
    0xFFF0000000000000,  # -inf
    0x7FF8000000000000,  # canonical quiet NaN
    0x7FF8DEADBEEFCAFE,  # NaN with a payload
    0xFFF0000000000001,  # negative signalling NaN
    0x3FF0000000000000,  # 1.0
    0xBFD5555555555555,  # -1/3 (inexact repeating fraction)
]


def _bits_to_doubles(bits):
    return np.array(bits, dtype=np.uint64).view(np.float64)


def _roundtrip(frame):
    ftype, length = decode_header(frame[:HEADER.size])
    payload = frame[HEADER.size:]
    assert len(payload) == length
    return ftype, payload


class TestEvalRequestRoundtrip:
    def test_special_values_bit_exact(self):
        xs = _bits_to_doubles(SPECIAL_BITS)
        frame = encode_eval_request({"id": 7, "fn": "exp2", "fmt": "t8"}, xs)
        ftype, payload = _roundtrip(frame)
        assert ftype == FRAME_EVAL
        meta, out = decode_eval_request(payload)
        assert meta == {"id": 7, "fn": "exp2", "fmt": "t8"}
        assert out.view(np.uint64).tolist() == SPECIAL_BITS

    def test_fuzz_random_bit_patterns(self):
        rng = random.Random(0xF8A3E5)
        for trial in range(50):
            n = rng.choice((1, 2, 3, 17, 256, 1000))
            bits = [rng.getrandbits(64) for _ in range(n)]
            xs = _bits_to_doubles(bits)
            meta, out = decode_eval_request(
                _roundtrip(encode_eval_request({"id": trial}, xs))[1]
            )
            assert out.view(np.uint64).tolist() == bits

    def test_empty_batch(self):
        meta, out = decode_eval_request(
            _roundtrip(encode_eval_request({"id": 1}, []))[1]
        )
        assert meta == {"id": 1, "n": 0} or meta == {"id": 1}
        assert out.size == 0

    def test_list_inputs_match_ndarray_inputs(self):
        vals = [0.5, -0.0, math.inf, 2.0 ** -1030]
        a = encode_eval_request({"id": 1}, vals)
        b = encode_eval_request({"id": 1}, np.array(vals))
        assert a == b

    def test_decoded_inputs_are_views(self):
        frame = encode_eval_request({"id": 1}, [1.0, 2.0])
        _, out = decode_eval_request(frame[HEADER.size:])
        assert out.base is not None  # np.frombuffer view, not a copy


class TestEvalResultRoundtrip:
    def test_special_values_bit_exact(self):
        bits = np.array([b - (1 << 64) if b >> 63 else b
                         for b in SPECIAL_BITS], dtype=np.int64)
        values = _bits_to_doubles(SPECIAL_BITS)
        codes = np.array(
            [i % len(TIER_NAMES) for i in range(len(SPECIAL_BITS))],
            dtype=np.uint8,
        )
        frame = encode_eval_result({"id": 3, "ok": True}, bits, values, codes)
        ftype, payload = _roundtrip(frame)
        assert ftype == FRAME_RESULT
        meta, obits, ovalues, ocodes = decode_eval_result(payload)
        assert meta["n"] == len(SPECIAL_BITS) and meta["ok"] is True
        assert obits.tolist() == bits.tolist()
        assert ovalues.view(np.uint64).tolist() == SPECIAL_BITS
        assert ocodes.tolist() == codes.tolist()

    def test_empty_result(self):
        meta, bits, values, codes = decode_eval_result(
            _roundtrip(encode_eval_result({"id": 1}, [], [], []))[1]
        )
        assert meta["n"] == 0
        assert bits.size == values.size == codes.size == 0

    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(FrameError, match="disagree"):
            encode_eval_result({"id": 1}, [1, 2], [1.0], [0, 0])

    def test_tier_code_table_is_stable(self):
        # The wire meaning of the uint8 codes: codes are append-only —
        # moving an existing one would silently corrupt every
        # mixed-version fleet.  New tiers must extend, never reorder.
        assert TIER_NAMES[:3] == ("vector", "scalar", "oracle")
        assert TIER_NAMES == ("vector", "scalar", "oracle", "table")
        assert TIER_CODES == {
            "vector": 0, "scalar": 1, "oracle": 2, "table": 3,
        }


class TestFrameBounds:
    def test_max_meta_rejected(self):
        with pytest.raises(FrameError, match="64 KiB"):
            encode_eval_request({"id": "x" * 0x10000}, [1.0])

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(FRAME_JSON, b"x" * (MAX_FRAME + 1))

    def test_oversized_length_rejected_on_decode(self):
        header = HEADER.pack(MAGIC, VERSION, FRAME_JSON, MAX_FRAME + 1)
        with pytest.raises(FrameError, match="exceeds"):
            decode_header(header)

    def test_max_length_frame_roundtrips(self):
        # The largest legal frame survives encode -> stream -> decode.
        payload = b"\0" * MAX_FRAME
        frame = encode_frame(FRAME_EVAL, payload)
        ftype, got = read_frame_sync(io.BytesIO(frame))
        assert ftype == FRAME_EVAL and got == payload


class TestMalformedFrames:
    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            decode_header(HEADER.pack(b"XX", VERSION, FRAME_JSON, 0))

    def test_bad_version(self):
        with pytest.raises(FrameError, match="version"):
            decode_header(HEADER.pack(MAGIC, 9, FRAME_JSON, 0))

    def test_unknown_type(self):
        with pytest.raises(FrameError, match="type"):
            decode_header(HEADER.pack(MAGIC, VERSION, 0x7F, 0))

    def test_truncated_header(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_header(b"RP\x01")

    def test_truncated_payload_stream(self):
        frame = encode_eval_request({"id": 1}, [1.0, 2.0, 3.0])
        for cut in (HEADER.size + 1, len(frame) - 1, len(frame) - 8):
            with pytest.raises(FrameError, match="truncated"):
                read_frame_sync(io.BytesIO(frame[:cut]))

    def test_clean_eof_returns_none(self):
        assert read_frame_sync(io.BytesIO(b"")) is None

    def test_eval_payload_not_multiple_of_8(self):
        good = encode_eval_request({"id": 1}, [1.0])
        with pytest.raises(FrameError, match="multiple of 8"):
            decode_eval_request(good[HEADER.size:] + b"abc")

    def test_meta_length_overruns_payload(self):
        payload = struct.pack("<H", 500) + b"{}"
        with pytest.raises(FrameError, match="truncated"):
            decode_eval_request(payload)

    def test_meta_not_json(self):
        payload = struct.pack("<H", 4) + b"!!!!"
        with pytest.raises(FrameError, match="meta JSON"):
            decode_eval_request(payload)

    def test_meta_not_object(self):
        payload = struct.pack("<H", 2) + b"[]"
        with pytest.raises(FrameError, match="object"):
            decode_eval_request(payload)

    def test_result_count_disagrees_with_payload(self):
        frame = encode_eval_result({"id": 1}, [1], [1.0], [0])
        payload = bytearray(frame[HEADER.size:])
        # Truncate one trailing tier byte: n now overstates the arrays.
        with pytest.raises(FrameError, match="claims"):
            decode_eval_result(bytes(payload[:-1]))

    def test_result_meta_without_n(self):
        payload = struct.pack("<H", 11) + b'{"ok": true}'[:11]
        with pytest.raises(FrameError):
            decode_eval_result(payload)

    def test_fuzz_random_garbage_never_crashes(self):
        rng = random.Random(0xBADF00D)
        for _ in range(200):
            blob = bytes(rng.getrandbits(8)
                         for _ in range(rng.randrange(0, 64)))
            for decoder in (decode_eval_request, decode_eval_result,
                            decode_json_frame):
                try:
                    decoder(blob)
                except FrameError:
                    pass  # structured failure is the contract

    def test_fuzz_bitflipped_frames_fail_structurally(self):
        rng = random.Random(1337)
        base = encode_eval_result(
            {"id": 9, "ok": True}, [1, 2, 3], [1.0, 2.0, 3.0], [0, 1, 2]
        )
        for _ in range(200):
            mutated = bytearray(base)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            stream = io.BytesIO(bytes(mutated))
            try:
                got = read_frame_sync(stream)
                if got is not None and got[0] == FRAME_RESULT:
                    decode_eval_result(got[1])
            except FrameError:
                pass


class TestJsonFrames:
    def test_roundtrip(self):
        obj = {"op": "stats", "id": "k", "nested": {"x": [1, 2.5, None]}}
        ftype, payload = _roundtrip(encode_json_frame(obj))
        assert ftype == FRAME_JSON
        assert decode_json_frame(payload) == obj

    def test_non_object_rejected(self):
        with pytest.raises(FrameError, match="object"):
            decode_json_frame(b"[1, 2]")

    def test_stream_carries_mixed_frame_types(self):
        # One buffer: JSON control, binary eval, JSON control, result.
        frames = [
            encode_json_frame({"op": "ping", "id": 0}),
            encode_eval_request({"id": 1, "fn": "ln"}, [0.5, 1.5]),
            encode_json_frame({"op": "stats", "id": 2}),
            encode_eval_result({"id": 3, "ok": True}, [4], [0.25], [0]),
        ]
        stream = io.BytesIO(b"".join(frames))
        types = []
        while True:
            got = read_frame_sync(stream)
            if got is None:
                break
            types.append(got[0])
        assert types == [FRAME_JSON, FRAME_EVAL, FRAME_JSON, FRAME_RESULT]
