"""TCP server round trips: bit-identity, coalescing, fallback, protocol."""

import json
import math
import socket

import pytest

from repro.fp import IEEE_MODES, all_finite
from repro.funcs import TINY_CONFIG
from repro.libm.runtime import RlibmProg
from repro.serve import ServeClient, ServerThread, ServingRegistry

FNS = ("exp2", "log2", "sinpi")


@pytest.fixture(scope="module")
def server():
    registry = ServingRegistry("tiny", names=FNS)
    with ServerThread(registry, batch_window=0.001) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient("127.0.0.1", server.port) as c:
        yield c


@pytest.fixture(scope="module")
def scalar_lib():
    return RlibmProg.from_artifacts(TINY_CONFIG, FNS)


@pytest.mark.parametrize("fn", FNS)
def test_round_trip_bit_identical_all_formats_and_modes(fn, server, scalar_lib):
    # The ISSUE acceptance bar: every family format x rounding mode
    # through the wire must match the scalar RlibmProg path bitwise.
    with ServeClient("127.0.0.1", server.port) as c:
        scalar_fn = scalar_lib.function(fn)
        for fmt in TINY_CONFIG.formats:
            vals = list(all_finite(fmt))
            xs = [v.to_float() for v in vals]
            for mode in IEEE_MODES:
                resp = c.eval(fn, xs, fmt=fmt.display_name, mode=mode.value)
                assert resp["ok"], resp
                assert resp["fmt"] == fmt.display_name
                assert resp["mode"] == mode.value
                want = [scalar_fn.rounded(v, mode).bits for v in vals]
                assert resp["bits"] == want, (fn, fmt, mode)
                assert set(resp["tiers"]) == {"vector"}


def test_values_decode_and_specials(client):
    resp = client.eval("exp2", [3.0, math.inf, -math.inf, math.nan], fmt="t8")
    assert resp["values"][0] == 8.0
    assert resp["values"][1] == math.inf
    assert resp["values"][2] == 0.0
    assert math.isnan(resp["values"][3])


def test_hex_float_inputs(client):
    resp = client.eval("exp2", ["0x1.8p+1", "1.0", 2.0], fmt="t8")
    assert resp["values"] == [8.0, 2.0, 4.0]


def test_pipelined_requests_coalesce(server):
    # 32 pipelined single-input requests with the same (fn, level, mode)
    # must fuse into far fewer evaluator batches.
    fmt = TINY_CONFIG.formats[0]
    xs = [v.to_float() for v in list(all_finite(fmt))[:32]]
    with ServeClient("127.0.0.1", server.port) as c:
        direct = c.eval("exp2", xs, fmt="t8")
        before = server.metrics.snapshot()
        answers = c.eval_many(
            [{"fn": "exp2", "inputs": [x], "fmt": "t8"} for x in xs]
        )
    assert all(r["ok"] for r in answers)
    # Fusion is invisible in the results themselves.
    assert [r["bits"][0] for r in answers] == direct["bits"]
    after = server.metrics.snapshot()
    flushes = after["coalesced_flushes"] - before["coalesced_flushes"]
    fused = after["coalesced_requests"] - before["coalesced_requests"]
    assert fused == 32
    assert flushes < 32  # at least some requests were fused
    assert after["batch_sizes"]["max"] > 1


def test_coalesced_requests_counted_once(server):
    # Regression: requests_by_fn used to count one *batch* per flush, so
    # coalesced requests were under-counted as a single request (and a
    # direct batch over-counted relative to them).  The contract now:
    # requests_by_fn counts client requests, batches_by_fn counts
    # evaluator batches.
    fmt = TINY_CONFIG.formats[0]
    xs = [v.to_float() for v in list(all_finite(fmt))[:24]]
    with ServeClient("127.0.0.1", server.port) as c:
        before = server.metrics.snapshot()
        answers = c.eval_many(
            [{"fn": "exp2", "inputs": [x], "fmt": "t8"} for x in xs]
        )
    assert all(r["ok"] for r in answers)
    after = server.metrics.snapshot()
    requests = (
        after["requests_by_fn"]["exp2"] - before["requests_by_fn"].get("exp2", 0)
    )
    batches = (
        after["batches_by_fn"]["exp2"] - before["batches_by_fn"].get("exp2", 0)
    )
    flushes = after["coalesced_flushes"] - before["coalesced_flushes"]
    assert requests == 24          # every client request counted exactly once
    assert batches == flushes      # one batch per evaluator flush
    assert batches < requests      # and coalescing actually fused some


def test_coalesced_slices_match_batch(server, scalar_lib):
    # Fused responses must carry exactly each request's slice.
    fmt = TINY_CONFIG.formats[1]
    vals = list(all_finite(fmt))[::41]
    xs = [v.to_float() for v in vals]
    with ServeClient("127.0.0.1", server.port) as c:
        answers = c.eval_many(
            [{"fn": "log2", "inputs": [x], "fmt": "t10"} for x in xs]
        )
    got = [a["bits"][0] for a in answers]
    want = [scalar_lib.log2.rounded(v).bits for v in vals]
    assert got == want


def test_stats_and_info_ops(client):
    client.eval("exp2", [1.0])
    stats = client.stats()
    assert stats["requests_by_fn"]["exp2"] >= 1
    assert stats["results_by_tier"].get("vector", 0) >= 1
    for key in (
        "errors", "coalesced_flushes", "coalesced_requests",
        "batch_sizes", "eval_latency_s", "request_latency_s",
    ):
        assert key in stats
    assert stats["batch_sizes"]["p50"] >= 1
    info = client.info()
    assert info["family"] == "tiny"
    assert info["formats"] == ["t8", "t10"]
    assert set(FNS) <= set(info["functions"])
    assert info["missing"] == []
    assert client.ping()


def test_slash_stats_alias(client):
    resp = client.request({"op": "/stats"})
    assert resp["ok"] and "stats" in resp


def test_protocol_errors(server, client):
    before = server.metrics.snapshot()["errors"]
    bad = [
        {"op": "eval"},  # no fn
        {"op": "eval", "fn": "exp2", "inputs": []},  # empty batch
        {"op": "eval", "fn": "nope", "inputs": [1.0]},  # unknown fn
        {"op": "eval", "fn": "exp2", "inputs": [1.0], "fmt": "f128"},
        {"op": "eval", "fn": "exp2", "inputs": [1.0], "mode": "weird"},
        {"op": "bogus"},
    ]
    for req in bad:
        resp = client.request(req)
        assert resp["ok"] is False, req
        assert resp["error"]
    after = server.metrics.snapshot()["errors"]
    assert after - before == len(bad)
    # The connection survives errors.
    assert client.ping()


def test_raw_garbage_line(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=10) as s:
        f = s.makefile("rwb")
        f.write(b"this is not json\n")
        f.flush()
        resp = json.loads(f.readline())
        assert resp["ok"] is False


def test_missing_artifact_server_reports_oracle_tier(tmp_path):
    # A registry over an empty directory: the server still answers,
    # tier-tagged as oracle, and /stats shows the degradation.
    registry = ServingRegistry("tiny", tmp_path, names=("exp2",))
    with ServerThread(registry) as srv:
        with ServeClient("127.0.0.1", srv.port) as c:
            info = c.info()
            assert info["missing"] == ["exp2"]
            resp = c.eval("exp2", [3.0, math.inf], fmt="t8")
            assert resp["ok"]
            assert resp["tiers"] == ["oracle", "oracle"]
            assert resp["values"] == [8.0, math.inf]
            stats = c.stats()
            assert stats["results_by_tier"]["oracle"] == 2


def test_out_of_format_inputs_report_scalar_tier(client):
    resp = client.eval("exp2", [1.0, math.pi], fmt="t10")
    assert resp["tiers"] == ["vector", "scalar"]
