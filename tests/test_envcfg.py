"""The central REPRO_* environment parsing helper."""

import logging

import pytest

from repro import envcfg
from repro.envcfg import env_float, env_int, env_str


@pytest.fixture(autouse=True)
def _fresh_warnings():
    envcfg.reset_warnings()
    yield
    envcfg.reset_warnings()


class TestParsing:
    def test_absent_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_float("REPRO_X", 1.5) == 1.5
        assert env_int("REPRO_X", 7) == 7
        assert env_str("REPRO_X", "a") == "a"

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "")
        assert env_float("REPRO_X", 1.5) == 1.5

    def test_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "2.5")
        assert env_float("REPRO_X", 0.0) == 2.5
        monkeypatch.setenv("REPRO_X", "42")
        assert env_int("REPRO_X", 0) == 42
        monkeypatch.setenv("REPRO_X", "spawn")
        assert env_str("REPRO_X", "fork", choices=["fork", "spawn"]) == "spawn"

    def test_malformed_falls_back_with_warning(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_X", "banana")
        with caplog.at_level(logging.WARNING, logger="repro.envcfg"):
            assert env_float("REPRO_X", 3.0) == 3.0
        assert "REPRO_X" in caplog.text and "banana" in caplog.text

    def test_warns_once_per_value(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_X", "banana")
        with caplog.at_level(logging.WARNING, logger="repro.envcfg"):
            env_float("REPRO_X", 3.0)
            env_float("REPRO_X", 3.0)
            env_float("REPRO_X", 3.0)
        assert caplog.text.count("banana") == 1
        # A *different* bad value warns again.
        monkeypatch.setenv("REPRO_X", "kiwi")
        with caplog.at_level(logging.WARNING, logger="repro.envcfg"):
            env_float("REPRO_X", 3.0)
        assert "kiwi" in caplog.text

    def test_bounds_validated(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_X", "-3")
        with caplog.at_level(logging.WARNING, logger="repro.envcfg"):
            assert env_int("REPRO_X", 2, minimum=0) == 2
        assert "minimum" in caplog.text
        monkeypatch.setenv("REPRO_X", "1000")
        assert env_float("REPRO_X", 2.0, maximum=10.0) == 2.0

    def test_raise_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "banana")
        with pytest.raises(ValueError, match="REPRO_X='banana'"):
            env_float("REPRO_X", 3.0, on_error="raise")
        with pytest.raises(ValueError, match="choose from"):
            env_str("REPRO_X", "a", choices=["a", "b"], on_error="raise")


class TestCallSites:
    def test_start_method_raise_preserved(self, monkeypatch):
        from repro.parallel.pool import start_method

        monkeypatch.setenv("REPRO_MP_START", "bogus")
        with pytest.raises(ValueError, match=r"REPRO_MP_START='bogus'.*choose from"):
            start_method()

    def test_pool_knobs_fall_back(self, monkeypatch, caplog):
        from repro.parallel.pool import DEFAULT_CHUNK_TIMEOUT

        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "not-a-number")
        with caplog.at_level(logging.WARNING, logger="repro.envcfg"):
            assert (
                env_float(
                    "REPRO_CHUNK_TIMEOUT", DEFAULT_CHUNK_TIMEOUT, minimum=0.001
                )
                == DEFAULT_CHUNK_TIMEOUT
            )
        assert "REPRO_CHUNK_TIMEOUT" in caplog.text

    def test_fleet_config_env_raises_on_garbage(self, monkeypatch):
        from repro.serve.fleet import FleetConfig

        monkeypatch.setenv("REPRO_FLEET_PROBE_INTERVAL", "soon")
        with pytest.raises(ValueError, match="REPRO_FLEET_PROBE_INTERVAL"):
            FleetConfig.from_env()

    def test_fleet_config_env_applies(self, monkeypatch):
        from repro.serve.fleet import FleetConfig

        monkeypatch.setenv("REPRO_FLEET_PROBE_INTERVAL", "0.125")
        monkeypatch.setenv("REPRO_FLEET_RESTART_BUDGET", "9")
        cfg = FleetConfig.from_env()
        assert cfg.probe_interval == 0.125
        assert cfg.restart_budget == 9
