"""Smoke tests: the example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 420):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Exhaustive verification" in out
    assert "OK" in out
    assert "WRONG" not in out


def test_custom_format():
    out = run_example("custom_format.py")
    assert "every input of every format correctly rounded" in out


def test_generate_libm_cli(tmp_path):
    out = run_example(
        "generate_libm.py",
        "--family", "tiny", "--functions", "log2",
        "--out-dir", str(tmp_path),
    )
    assert "all functions generated" in out
    assert (tmp_path / "tiny_log2.json").exists()


def test_generate_libm_baseline_all(tmp_path):
    out = run_example(
        "generate_libm.py",
        "--family", "tiny", "--functions", "exp2",
        "--baseline", "all", "--out-dir", str(tmp_path),
    )
    assert "all functions generated" in out
    assert (tmp_path / "tinyall_exp2.json").exists()


def test_ml_inference():
    import pytest

    from repro.libm.artifacts import available_artifacts

    have = {a["name"] for a in available_artifacts() if a["family"] == "mini"}
    if not {"exp", "ln"} <= have:
        pytest.skip("mini artifacts not generated")
    out = run_example("ml_inference.py")
    assert "all spot checks correctly rounded" in out


def test_wrong_results():
    import re

    out = run_example("wrong_results.py", timeout=600)
    counts = dict(re.findall(r"(\S+):\s+(\d+)\s*$", out, re.MULTILINE))
    assert counts["rlibm-prog"] == "0"
    assert int(counts["glibc-like"]) > 0
    assert int(counts["crlibm-like"]) > 0
