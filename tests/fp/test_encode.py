"""Tests for exact encode/decode of bit patterns."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.fp import (
    FLOAT16,
    FLOAT32,
    FLOAT64,
    FPValue,
    Kind,
    T8,
    exact_bits,
    float_to_fraction,
    float_to_fpvalue,
    ilog2,
)


def _float32_of(bits: int) -> float:
    """Reference decode via struct (hardware float32)."""
    return struct.unpack("<f", struct.pack("<I", bits))[0]


class TestClassification:
    def test_zero(self):
        assert FPValue(FLOAT32, 0).kind is Kind.ZERO
        assert FPValue(FLOAT32, 0x8000_0000).kind is Kind.ZERO

    def test_subnormal(self):
        assert FPValue(FLOAT32, 1).kind is Kind.SUBNORMAL
        assert FPValue(FLOAT32, 0x007F_FFFF).kind is Kind.SUBNORMAL

    def test_normal(self):
        assert FPValue(FLOAT32, 0x0080_0000).kind is Kind.NORMAL
        assert FPValue(FLOAT32, 0x7F7F_FFFF).kind is Kind.NORMAL

    def test_special(self):
        assert FPValue(FLOAT32, 0x7F80_0000).kind is Kind.INFINITY
        assert FPValue(FLOAT32, 0xFF80_0000).kind is Kind.INFINITY
        assert FPValue(FLOAT32, 0x7F80_0001).kind is Kind.NAN
        assert FPValue(FLOAT32, 0x7FC0_0000).kind is Kind.NAN


class TestValues:
    def test_one(self):
        assert FPValue(FLOAT32, 0x3F80_0000).value == 1

    def test_known_values(self):
        assert FPValue(FLOAT32, 0x4000_0000).value == 2
        assert FPValue(FLOAT32, 0x3F00_0000).value == Fraction(1, 2)
        assert FPValue(FLOAT32, 0xC0A0_0000).value == -5
        assert FPValue(FLOAT32, 0x3DCC_CCCD).value == Fraction(13421773, 2**27)

    def test_min_subnormal(self):
        assert FPValue(FLOAT32, 1).value == Fraction(2) ** -149

    def test_max_finite(self):
        v = FPValue.max_finite(FLOAT32)
        assert v.value == FLOAT32.max_value

    def test_value_of_special_raises(self):
        with pytest.raises(ValueError):
            FPValue.infinity(FLOAT32).value
        with pytest.raises(ValueError):
            FPValue.nan(FLOAT32).value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_matches_hardware_float32(self, bits):
        v = FPValue(FLOAT32, bits)
        ref = _float32_of(bits)
        if math.isnan(ref):
            assert v.is_nan
        elif math.isinf(ref):
            assert v.is_infinity
            assert (ref < 0) == bool(v.sign)
        else:
            assert v.value == Fraction(ref)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_roundtrip(self, x):
        v = float_to_fpvalue(x)
        assert v.fmt == FLOAT64
        assert v.value == Fraction(x)
        assert v.to_float() == x or (x == 0 and v.to_float() == 0)


class TestNeighbours:
    def test_next_up_basic(self):
        one = FPValue(FLOAT32, 0x3F80_0000)
        assert one.next_up().value - one.value == Fraction(2) ** -23

    def test_next_up_across_zero(self):
        neg_zero = FPValue(FLOAT32, 0x8000_0000)
        assert neg_zero.next_up().value == FLOAT32.min_subnormal
        pos_zero = FPValue(FLOAT32, 0)
        assert pos_zero.next_down().value == -FLOAT32.min_subnormal

    def test_next_up_to_infinity(self):
        assert FPValue.max_finite(FLOAT32).next_up().is_infinity

    def test_next_down_negative(self):
        neg_one = FPValue(FLOAT32, 0xBF80_0000)
        assert neg_one.next_down().value < -1

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_next_up_down_inverse(self, bits):
        v = FPValue(FLOAT16, bits)
        if v.is_nan or v.is_infinity:
            return
        up = v.next_up()
        if not up.is_infinity:
            down = up.next_down()
            # Inverse up to the ±0 identification.
            assert down.value == v.value

    def test_total_order_exhaustive_t8(self):
        """next_up walks the whole T8 value line strictly increasingly."""
        v = FPValue.max_finite(T8, sign=1)  # most negative finite
        prev = v.value
        count = 1
        while True:
            v = v.next_up()
            if v.is_infinity:
                break
            assert v.value >= prev
            if not (v.kind is Kind.ZERO):
                assert v.value > prev or prev == 0
            prev = v.value
            count += 1
        # Every finite magnitude appears for each sign minus the shared zero.
        assert count == 2 * (FPValue.max_finite(T8).bits + 1) - 1


class TestUlpQuantum:
    def test_ulp_of_one(self):
        assert FPValue(FLOAT32, 0x3F80_0000).ulp() == Fraction(2) ** -23

    def test_ulp_subnormal(self):
        assert FPValue(FLOAT32, 1).ulp() == Fraction(2) ** -149

    def test_significand_quantum_reconstruction(self):
        for bits in [1, 0x1234, 0x3F80_0000, 0x7F7F_FFFF, 0x0012_3456]:
            v = FPValue(FLOAT32, bits)
            assert v.value == v.significand * Fraction(2) ** v.quantum_exponent


class TestExactBits:
    def test_exact_one(self):
        assert exact_bits(Fraction(1), FLOAT32) == 0x3F80_0000

    def test_exact_negative(self):
        assert exact_bits(Fraction(-2), FLOAT32) == 0xC000_0000

    def test_exact_subnormal(self):
        assert exact_bits(FLOAT32.min_subnormal, FLOAT32) == 1

    def test_inexact_returns_none(self):
        assert exact_bits(Fraction(1, 3), FLOAT32) is None
        assert exact_bits(Fraction(1, 10), FLOAT32) is None

    def test_too_small_returns_none(self):
        assert exact_bits(FLOAT32.min_subnormal / 2, FLOAT32) is None

    def test_too_large_returns_none(self):
        assert exact_bits(FLOAT32.max_value * 2, FLOAT32) is None

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_roundtrip_all_finite_half(self, bits):
        v = FPValue(FLOAT16, bits)
        if not v.is_finite:
            return
        got = exact_bits(v.value, FLOAT16)
        if v.kind is Kind.ZERO:
            assert got == 0  # both zeros canonicalize to +0
        else:
            assert got == bits


class TestIlog2:
    def test_powers(self):
        assert ilog2(Fraction(1)) == 0
        assert ilog2(Fraction(2)) == 1
        assert ilog2(Fraction(1, 2)) == -1
        assert ilog2(Fraction(1, 4)) == -2

    def test_non_powers(self):
        assert ilog2(Fraction(3)) == 1
        assert ilog2(Fraction(5, 4)) == 0
        assert ilog2(Fraction(2, 3)) == -1
        assert ilog2(Fraction(1, 3)) == -2

    def test_raises_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(Fraction(0))
        with pytest.raises(ValueError):
            ilog2(Fraction(-1))

    @given(
        st.integers(min_value=1, max_value=10**12),
        st.integers(min_value=1, max_value=10**12),
    )
    def test_property(self, a, b):
        x = Fraction(a, b)
        e = ilog2(x)
        assert Fraction(2) ** e <= x < Fraction(2) ** (e + 1)

    def test_float_agreement(self):
        assert ilog2(float_to_fraction(0.1)) == -4
        assert ilog2(float_to_fraction(1e300)) == math.floor(math.log2(1e300))
