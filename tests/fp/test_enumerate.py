"""Enumeration and sampling of format inputs."""

import random

from repro.fp import (
    FLOAT32,
    Kind,
    T8,
    T10,
    all_finite,
    all_patterns,
    count_finite,
    sample_finite,
    stratified_sample,
)
from repro.fp.enumerate import enumerate_kind


class TestAllFinite:
    def test_count_matches(self):
        vals = list(all_finite(T8))
        assert len(vals) == count_finite(T8)
        assert all(v.is_finite for v in vals)

    def test_positive_only(self):
        vals = list(all_finite(T8, positive_only=True))
        assert len(vals) == count_finite(T8) // 2
        assert all(v.sign == 0 for v in vals)

    def test_includes_both_zeros(self):
        bits = {v.bits for v in all_finite(T8)}
        assert 0 in bits and T8.sign_mask in bits

    def test_no_specials(self):
        assert all(not v.is_nan and not v.is_infinity for v in all_finite(T10))


class TestAllPatterns:
    def test_complete(self):
        pats = list(all_patterns(T8))
        assert len(pats) == T8.num_bit_patterns
        kinds = {v.kind for v in pats}
        assert kinds == set(Kind)


class TestSampleFinite:
    def test_small_space_returns_everything(self):
        vals = sample_finite(T8, 10**6)
        assert len(vals) == count_finite(T8)

    def test_requested_size(self):
        vals = sample_finite(T10, 100, random.Random(0))
        assert len(vals) == 100
        assert all(v.is_finite for v in vals)

    def test_deterministic_with_seed(self):
        a = [v.bits for v in sample_finite(T10, 50, random.Random(3))]
        b = [v.bits for v in sample_finite(T10, 50, random.Random(3))]
        assert a == b

    def test_positive_only(self):
        vals = sample_finite(T10, 64, random.Random(1), positive_only=True)
        assert all(v.sign == 0 for v in vals)

    def test_large_space_sampling(self):
        vals = sample_finite(FLOAT32, 200, random.Random(2))
        assert len(vals) == 200
        assert all(v.is_finite for v in vals)


class TestStratifiedSample:
    def test_covers_every_binade_and_sign(self):
        vals = stratified_sample(T10, per_binade=2, rng=random.Random(0))
        seen = {(v.sign, v.exponent_field) for v in vals}
        # Every non-special exponent field for both signs.
        expected = {
            (s, e) for s in (0, 1) for e in range(0, (1 << T10.exponent_bits) - 1)
        }
        assert seen == expected

    def test_small_mantissa_space_exhaustive(self):
        vals = stratified_sample(T8, per_binade=100, rng=random.Random(0))
        # T8 has 8 mantissas per binade: all of them taken.
        per = {}
        for v in vals:
            per.setdefault((v.sign, v.exponent_field), set()).add(v.mantissa_field)
        assert all(len(m) == 1 << T8.mantissa_bits for m in per.values())

    def test_float32_scale(self):
        vals = stratified_sample(FLOAT32, per_binade=4, rng=random.Random(0))
        assert len(vals) == 2 * 255 * 4


class TestEnumerateKind:
    def test_subnormals(self):
        subs = list(enumerate_kind(T8, Kind.SUBNORMAL))
        assert len(subs) == 2 * ((1 << T8.mantissa_bits) - 1)
        assert all(v.kind is Kind.SUBNORMAL for v in subs)

    def test_infinities(self):
        infs = list(enumerate_kind(T8, Kind.INFINITY))
        assert len(infs) == 2
