"""Hypothesis property tests on rounding structure.

These are the invariants the constraint machinery leans on: rounding is
monotone, directed modes bracket the value, round-to-odd sits between the
directed modes, and rounding is idempotent.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.fp import (
    FPValue,
    IEEE_MODES,
    Kind,
    RoundingMode,
    T8,
    T10,
    FLOAT16,
    round_real,
)

FORMATS = [T8, T10, FLOAT16]
ALL_MODES = list(IEEE_MODES) + [RoundingMode.RTO]

rationals = st.fractions(
    min_value=Fraction(-10**5), max_value=Fraction(10**5), max_denominator=10**7
)


def as_extended(v: FPValue) -> Fraction:
    """Finite value, or a huge stand-in for infinities (order-preserving)."""
    if v.is_infinity:
        big = Fraction(10) ** 60
        return -big if v.sign else big
    return v.value


class TestMonotonicity:
    @settings(max_examples=300)
    @given(rationals, rationals, st.sampled_from(ALL_MODES), st.sampled_from(FORMATS))
    def test_rounding_is_monotone(self, x, y, mode, fmt):
        if x > y:
            x, y = y, x
        rx = round_real(x, fmt, mode)
        ry = round_real(y, fmt, mode)
        assert as_extended(rx) <= as_extended(ry)


class TestBracketing:
    @settings(max_examples=300)
    @given(rationals, st.sampled_from(FORMATS))
    def test_directed_modes_bracket(self, x, fmt):
        down = round_real(x, fmt, RoundingMode.RTN)
        up = round_real(x, fmt, RoundingMode.RTP)
        assert as_extended(down) <= x <= as_extended(up)

    @settings(max_examples=300)
    @given(rationals, st.sampled_from(FORMATS))
    def test_all_modes_within_directed(self, x, fmt):
        down = as_extended(round_real(x, fmt, RoundingMode.RTN))
        up = as_extended(round_real(x, fmt, RoundingMode.RTP))
        for mode in ALL_MODES:
            v = as_extended(round_real(x, fmt, mode))
            assert down <= v <= up

    @settings(max_examples=300)
    @given(rationals, st.sampled_from(FORMATS))
    def test_rtz_truncates(self, x, fmt):
        v = round_real(x, fmt, RoundingMode.RTZ)
        assert abs(as_extended(v)) <= abs(x)

    @settings(max_examples=300)
    @given(rationals, st.sampled_from(FORMATS))
    def test_nearest_error_at_most_half_ulp(self, x, fmt):
        v = round_real(x, fmt, RoundingMode.RNE)
        if not v.is_finite or abs(x) > fmt.max_value:
            return
        assert abs(v.value - x) <= v.ulp() / 2 or v.kind is Kind.ZERO


class TestIdempotence:
    @settings(max_examples=200)
    @given(rationals, st.sampled_from(ALL_MODES), st.sampled_from(FORMATS))
    def test_double_application_fixed_point(self, x, mode, fmt):
        first = round_real(x, fmt, mode)
        if not first.is_finite:
            return
        second = round_real(first.value, fmt, mode)
        # Value-level fixed point (the sign of zero is recreated from the
        # real zero, which is unsigned).
        if first.kind is Kind.ZERO:
            assert second.kind is Kind.ZERO
        else:
            assert second.bits == first.bits


class TestRoundToOddStructure:
    @settings(max_examples=300)
    @given(rationals, st.sampled_from(FORMATS))
    def test_odd_unless_exact(self, x, fmt):
        v = round_real(x, fmt, RoundingMode.RTO)
        if not v.is_finite or v.kind is Kind.ZERO:
            return
        if v.value != x:
            assert v.bits & 1 == 1

    @settings(max_examples=300)
    @given(rationals, st.sampled_from([T8, T10]))
    def test_never_equals_even_neighbour_of_inexact(self, x, fmt):
        v = round_real(x, fmt, RoundingMode.RTO)
        if not v.is_finite:
            return
        # Round-to-odd loses no less information than truncation: the
        # result is always within one ulp of x.
        if abs(x) <= fmt.max_value:
            assert abs(as_extended(v) - x) < v.ulp() if v.value != 0 else True
