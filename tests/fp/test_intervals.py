"""Tests for rounding intervals and the Interval algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp import (
    FLOAT16,
    FPValue,
    IEEE_MODES,
    Interval,
    Kind,
    RoundingMode,
    T8,
    all_finite,
    round_real,
    rounding_interval,
)

RTO = RoundingMode.RTO
ALL_MODES = list(IEEE_MODES) + [RTO]


class TestIntervalAlgebra:
    def test_contains_closed(self):
        iv = Interval(Fraction(0), Fraction(1))
        assert iv.contains(Fraction(0))
        assert iv.contains(Fraction(1))
        assert iv.contains(Fraction(1, 2))
        assert not iv.contains(Fraction(2))

    def test_contains_open(self):
        iv = Interval(Fraction(0), Fraction(1), lo_open=True, hi_open=True)
        assert not iv.contains(Fraction(0))
        assert not iv.contains(Fraction(1))
        assert iv.contains(Fraction(1, 2))

    def test_unbounded(self):
        iv = Interval(None, Fraction(3))
        assert iv.contains(Fraction(-(10**30)))
        assert not iv.contains(Fraction(4))
        assert iv.width is None

    def test_empty(self):
        assert Interval.EMPTY.is_empty
        assert Interval(Fraction(1), Fraction(1), lo_open=True).is_empty
        assert not Interval(Fraction(1), Fraction(1)).is_empty

    def test_singleton(self):
        assert Interval(Fraction(2), Fraction(2)).is_singleton
        assert not Interval(Fraction(2), Fraction(3)).is_singleton

    def test_intersect_overlapping(self):
        a = Interval(Fraction(0), Fraction(2))
        b = Interval(Fraction(1), Fraction(3))
        c = a.intersect(b)
        assert (c.lo, c.hi) == (Fraction(1), Fraction(2))
        assert not c.lo_open and not c.hi_open

    def test_intersect_openness_wins(self):
        a = Interval(Fraction(0), Fraction(2), hi_open=True)
        b = Interval(Fraction(0), Fraction(2), lo_open=True)
        c = a.intersect(b)
        assert c.lo_open and c.hi_open

    def test_intersect_disjoint_empty(self):
        a = Interval(Fraction(0), Fraction(1))
        b = Interval(Fraction(2), Fraction(3))
        assert a.intersect(b).is_empty

    def test_intersect_unbounded(self):
        a = Interval(None, None)
        b = Interval(Fraction(-1), Fraction(1), lo_open=True)
        c = a.intersect(b)
        assert (c.lo, c.hi, c.lo_open, c.hi_open) == (Fraction(-1), Fraction(1), True, False)

    def test_to_closed(self):
        iv = Interval(Fraction(0), Fraction(1), lo_open=True, hi_open=True)
        closed = iv.to_closed(Fraction(1, 100))
        assert (closed.lo, closed.hi) == (Fraction(1, 100), Fraction(99, 100))
        assert not closed.lo_open and not closed.hi_open

    def test_shrink(self):
        iv = Interval(Fraction(0), Fraction(1))
        s = iv.shrink(Fraction(1, 4))
        assert (s.lo, s.hi) == (Fraction(1, 4), Fraction(3, 4))

    def test_midpoint(self):
        assert Interval(Fraction(0), Fraction(1)).midpoint == Fraction(1, 2)
        with pytest.raises(ValueError):
            Interval(None, Fraction(1)).midpoint

    @given(
        st.fractions(max_denominator=100),
        st.fractions(max_denominator=100),
        st.fractions(max_denominator=100),
        st.fractions(max_denominator=100),
        st.fractions(max_denominator=100),
    )
    def test_intersection_is_conjunction(self, a, b, c, d, x):
        ia = Interval(min(a, b), max(a, b))
        ib = Interval(min(c, d), max(c, d))
        assert ia.intersect(ib).contains(x) == (ia.contains(x) and ib.contains(x))


def _sample_points(iv: Interval):
    """A few rationals inside/outside the interval for membership checks."""
    pts = []
    if iv.lo is not None:
        pts += [iv.lo, iv.lo - Fraction(1, 10**9), iv.lo + Fraction(1, 10**9)]
    if iv.hi is not None:
        pts += [iv.hi, iv.hi - Fraction(1, 10**9), iv.hi + Fraction(1, 10**9)]
    if iv.lo is not None and iv.hi is not None and iv.lo <= iv.hi:
        pts.append((iv.lo + iv.hi) / 2)
    return pts


class TestRoundingIntervals:
    """Fundamental soundness: x in interval(v, mode) <=> round(x, mode) == v."""

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_exhaustive_t8_boundary_consistency(self, mode):
        for v in all_finite(T8):
            iv = rounding_interval(v, mode)
            if iv.is_empty:
                continue
            for x in _sample_points(iv):
                got = round_real(x, T8, mode)
                assert iv.contains(x) == (got.bits == v.bits), (
                    f"v={v!r} mode={mode} x={x}: contains={iv.contains(x)} got={got!r}"
                )

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_value_itself_in_interval(self, mode):
        for v in all_finite(FLOAT16):
            if v.bits > 200 and v.bits & 0x3F:  # keep runtime bounded
                continue
            iv = rounding_interval(v, mode)
            if iv.is_empty:
                continue
            # A representable value rounds to itself, except -0 which is
            # only produced from inexact negative reals.
            if not (v.kind is Kind.ZERO and v.sign == 1):
                assert iv.contains(v.value)

    @settings(max_examples=300)
    @given(
        st.fractions(
            min_value=Fraction(-500), max_value=Fraction(500), max_denominator=10**6
        ),
        st.sampled_from(ALL_MODES),
    )
    def test_round_then_interval_contains(self, x, mode):
        v = round_real(x, T8, mode)
        if not v.is_finite:
            return
        assert rounding_interval(v, mode).contains(x)

    def test_intervals_partition_t8_rne(self):
        """Every real in range belongs to exactly one RNE interval."""
        probes = [Fraction(i, 7) for i in range(-2000, 2000)]
        patterns = list(all_finite(T8)) + [
            FPValue.infinity(T8),
            FPValue.infinity(T8, sign=1),
        ]
        ivs = [(v, rounding_interval(v, RoundingMode.RNE)) for v in patterns]
        for x in probes:
            hits = [v for v, iv in ivs if iv.contains(x)]
            assert len(hits) == 1, f"x={x} hit {hits}"


class TestRoundToOddIntervals:
    def test_odd_pattern_full_width(self):
        v = FPValue(FLOAT16, 0x3C01)  # 1 + 2^-10, odd pattern
        iv = rounding_interval(v, RTO)
        assert iv.lo_open and iv.hi_open
        assert iv.lo == Fraction(1) and iv.hi == 1 + Fraction(2, 2**10)

    def test_even_pattern_singleton(self):
        v = FPValue(FLOAT16, 0x3C00)  # exactly 1, even pattern
        iv = rounding_interval(v, RTO)
        assert iv.is_singleton and iv.lo == 1

    def test_neg_zero_empty(self):
        v = FPValue(FLOAT16, FLOAT16.sign_mask)
        assert rounding_interval(v, RTO).is_empty


class TestZeroIntervals:
    def test_pos_zero_rne(self):
        iv = rounding_interval(FPValue.zero(FLOAT16), RoundingMode.RNE)
        assert iv.lo == 0 and iv.hi == FLOAT16.min_subnormal / 2
        assert not iv.lo_open and not iv.hi_open

    def test_neg_zero_rne(self):
        iv = rounding_interval(
            FPValue.zero(FLOAT16, sign=1), RoundingMode.RNE
        )
        assert iv.lo == -FLOAT16.min_subnormal / 2 and iv.hi == 0
        assert not iv.lo_open and iv.hi_open

    def test_pos_zero_rtp_singleton(self):
        iv = rounding_interval(FPValue.zero(FLOAT16), RoundingMode.RTP)
        assert iv.is_singleton and iv.lo == 0

    def test_neg_zero_rtn_empty(self):
        iv = rounding_interval(FPValue.zero(FLOAT16, sign=1), RoundingMode.RTN)
        assert iv.is_empty


class TestOverflowIntervals:
    def test_max_finite_rne_hi_is_threshold(self):
        v = FPValue.max_finite(FLOAT16)
        iv = rounding_interval(v, RoundingMode.RNE)
        assert iv.hi == FLOAT16.overflow_threshold
        assert iv.hi_open  # max_value has odd mantissa -> ties go to inf

    def test_max_finite_rtz_unbounded(self):
        v = FPValue.max_finite(FLOAT16)
        iv = rounding_interval(v, RoundingMode.RTZ)
        assert iv.hi is None and iv.lo == FLOAT16.max_value

    def test_infinity_rne(self):
        iv = rounding_interval(FPValue.infinity(FLOAT16), RoundingMode.RNE)
        assert iv.lo == FLOAT16.overflow_threshold and iv.hi is None

    def test_neg_infinity_rtn(self):
        iv = rounding_interval(FPValue.infinity(FLOAT16, 1), RoundingMode.RTN)
        assert iv.hi == -FLOAT16.max_value and iv.hi_open

    def test_infinity_rtz_empty(self):
        assert rounding_interval(FPValue.infinity(FLOAT16), RoundingMode.RTZ).is_empty

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            rounding_interval(FPValue.nan(FLOAT16), RoundingMode.RNE)
