"""Binary64 helper conversions."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.fp.doubles import (
    double_is_exact,
    next_double_down,
    next_double_up,
    to_double_down,
    to_double_nearest,
    to_double_up,
)


class TestDirectedConversions:
    @given(st.fractions(max_denominator=10**9))
    def test_ordering(self, x):
        lo = to_double_down(x)
        hi = to_double_up(x)
        assert Fraction(lo) <= x <= Fraction(hi)
        mid = to_double_nearest(x)
        assert mid in (lo, hi)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_exact_doubles_fixed(self, d):
        x = Fraction(d) if d else Fraction(0)
        assert to_double_down(x) == to_double_up(x) == (d if d else 0.0)

    def test_one_third(self):
        x = Fraction(1, 3)
        lo, hi = to_double_down(x), to_double_up(x)
        assert lo < hi
        assert hi == math.nextafter(lo, math.inf)

    def test_tiny_subnormal(self):
        x = Fraction(1, 2**1080)  # below the smallest subnormal
        assert to_double_down(x) == 0.0
        assert to_double_up(x) == 5e-324

    def test_huge(self):
        x = Fraction(2) ** 1100
        assert to_double_down(x) == pytest.approx(1.7976931348623157e308)
        assert math.isinf(to_double_up(x))


class TestNextDouble:
    def test_adjacent(self):
        assert next_double_up(1.0) == 1.0 + 2.0**-52
        assert next_double_down(1.0) == 1.0 - 2.0**-53

    def test_around_zero(self):
        assert next_double_up(0.0) == 5e-324
        assert next_double_down(0.0) == -5e-324

    @given(st.floats(min_value=-1e300, max_value=1e300, allow_nan=False))
    def test_strictly_monotone(self, d):
        assert next_double_up(d) > d > next_double_down(d)


class TestDoubleIsExact:
    def test_exact(self):
        assert double_is_exact(Fraction(3, 4))
        assert double_is_exact(Fraction(0))
        assert double_is_exact(Fraction(5, 2**1074))

    def test_inexact(self):
        assert not double_is_exact(Fraction(1, 3))
        assert not double_is_exact(Fraction(1, 2**1075))
        assert not double_is_exact(Fraction(10) ** 400)
