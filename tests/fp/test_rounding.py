"""Tests for rounding rationals into FP formats (5 IEEE modes + odd)."""

import math
from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fp import (
    FLOAT16,
    FLOAT32,
    FLOAT64,
    FPValue,
    IEEE_MODES,
    Kind,
    RoundingMode,
    T8,
    T10,
    all_finite,
    round_real,
)

RNE = RoundingMode.RNE
RNA = RoundingMode.RNA
RTZ = RoundingMode.RTZ
RTP = RoundingMode.RTP
RTN = RoundingMode.RTN
RTO = RoundingMode.RTO


def brute_force_round(x: Fraction, fmt, mode) -> FPValue:
    """Reference rounding by linear scan over the whole (tiny) format."""
    grid = sorted(
        {v.value for v in all_finite(fmt)},
    )
    below = [g for g in grid if g <= x]
    above = [g for g in grid if g >= x]
    lo = max(below) if below else None
    hi = min(above) if above else None

    def to_fpv(val: Fraction, sign_hint: int) -> FPValue:
        from repro.fp import exact_bits

        bits = exact_bits(val, fmt)
        assert bits is not None
        if val == 0 and sign_hint:
            bits |= fmt.sign_mask
        return FPValue(fmt, bits)

    sign_hint = 1 if x < 0 else 0
    if lo is not None and lo == x:
        # exact: +0 for exact zero
        return to_fpv(x, 1 if x < 0 else 0)
    if lo is None:  # below the most negative finite value
        if mode in (RNE, RNA):
            return (
                FPValue.infinity(fmt, 1)
                if -x >= fmt.overflow_threshold
                else FPValue.max_finite(fmt, 1)
            )
        if mode is RTN:
            return FPValue.infinity(fmt, 1)
        return FPValue.max_finite(fmt, 1)
    if hi is None:  # above the most positive finite value
        if mode in (RNE, RNA):
            return (
                FPValue.infinity(fmt)
                if x >= fmt.overflow_threshold
                else FPValue.max_finite(fmt)
            )
        if mode is RTP:
            return FPValue.infinity(fmt)
        return FPValue.max_finite(fmt)
    lo_v, hi_v = to_fpv(lo, sign_hint), to_fpv(hi, sign_hint)
    if mode is RTN:
        return lo_v
    if mode is RTP:
        return hi_v
    if mode is RTZ:
        return lo_v if x > 0 else hi_v
    if mode is RTO:
        return lo_v if lo_v.bits & 1 else hi_v
    mid = (lo + hi) / 2
    if x < mid:
        return lo_v
    if x > mid:
        return hi_v
    if mode is RNA:
        return hi_v if x > 0 else lo_v
    # RNE tie: even mantissa pattern
    return lo_v if lo_v.mantissa_field & 1 == 0 else hi_v


@st.composite
def rationals(draw, max_num=10**6):
    num = draw(st.integers(min_value=-max_num, max_value=max_num))
    den = draw(st.integers(min_value=1, max_value=max_num))
    return Fraction(num, den)


class TestAgainstBruteForce:
    @settings(max_examples=300)
    @given(rationals(), st.sampled_from(list(IEEE_MODES) + [RTO]))
    def test_t8_matches_brute_force(self, x, mode):
        got = round_real(x, T8, mode)
        want = brute_force_round(x, T8, mode)
        assert got.bits == want.bits, f"x={x} mode={mode}: got {got!r} want {want!r}"

    @settings(max_examples=150)
    @given(
        st.fractions(
            min_value=Fraction(-300), max_value=Fraction(300), max_denominator=5000
        ),
        st.sampled_from(list(IEEE_MODES) + [RTO]),
    )
    def test_t10_matches_brute_force(self, x, mode):
        got = round_real(x, T10, mode)
        want = brute_force_round(x, T10, mode)
        assert got.bits == want.bits


class TestAgainstHardware:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_rne_float64_matches_python(self, x):
        # Rounding the exact rational of a double returns the same double.
        v = round_real(Fraction(x) if x else Fraction(0), FLOAT64, RNE)
        assert v.to_float() == x or (x == 0 and v.to_float() == 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_rne_float32_matches_numpy(self, x):
        # x is exactly representable in float32 (width=32 floats), so
        # rounding must return it for every mode.
        for mode in list(IEEE_MODES) + [RTO]:
            v = round_real(Fraction(x) if x else Fraction(0), FLOAT32, mode)
            assert v.to_float() == x or (x == 0 and v.to_float() == 0.0)

    @given(st.floats(min_value=-3.4e38, max_value=3.4e38, allow_nan=False))
    def test_rne_float32_inexact_matches_numpy(self, x):
        want = float(np.float32(x))
        got = round_real(Fraction(x) if x else Fraction(0), FLOAT32, RNE)
        if math.isinf(want):
            assert got.is_infinity
        else:
            assert got.to_float() == want

    def test_fraction_to_double_matches_cpython(self):
        for frac in [Fraction(1, 3), Fraction(2, 3), Fraction(10, 7), Fraction(-1, 10)]:
            got = round_real(frac, FLOAT64, RNE).to_float()
            assert got == float(frac)


class TestSpecificCases:
    def test_exact_values_identity_all_modes(self):
        for v in all_finite(FLOAT16):
            if v.kind is Kind.ZERO:
                continue
            for mode in list(IEEE_MODES) + [RTO]:
                got = round_real(v.value, FLOAT16, mode)
                assert got.bits == v.bits or got.bits == (v.bits & ~FLOAT16.sign_mask)
                if v.value != 0:
                    assert got.bits == v.bits
            break  # full sweep is covered by brute-force tests

    def test_rne_tie_to_even(self):
        # Halfway between 1 and 1+2^-10 in float16 -> 1 (even mantissa).
        x = Fraction(1) + Fraction(1, 2**11)
        assert round_real(x, FLOAT16, RNE).value == 1
        # Halfway between 1+2^-10 and 1+2^-9 -> 1+2^-9 (even mantissa).
        x = Fraction(1) + Fraction(3, 2**11)
        assert round_real(x, FLOAT16, RNE).value == 1 + Fraction(1, 2**9)

    def test_rna_tie_away(self):
        x = Fraction(1) + Fraction(1, 2**11)
        assert round_real(x, FLOAT16, RNA).value == 1 + Fraction(1, 2**10)
        x = -(Fraction(1) + Fraction(1, 2**11))
        assert round_real(x, FLOAT16, RNA).value == -(1 + Fraction(1, 2**10))

    def test_directed_negative(self):
        x = Fraction(-10, 3)
        down = round_real(x, FLOAT16, RTN).value
        up = round_real(x, FLOAT16, RTP).value
        toz = round_real(x, FLOAT16, RTZ).value
        assert down < x < up
        assert toz == up  # toward zero from a negative = upward

    def test_round_to_odd_inexact_is_odd(self):
        x = Fraction(1) + Fraction(1, 2**20)  # inexact in float16
        v = round_real(x, FLOAT16, RTO)
        assert v.bits & 1 == 1

    def test_round_to_odd_exact_kept(self):
        v = round_real(Fraction(3, 2), FLOAT16, RTO)
        assert v.value == Fraction(3, 2)

    def test_overflow_near_modes(self):
        assert round_real(Fraction(65519), FLOAT16, RNE).value == 65504
        assert round_real(Fraction(65520), FLOAT16, RNE).is_infinity
        assert round_real(Fraction(65520), FLOAT16, RNA).is_infinity
        assert round_real(Fraction(-65520), FLOAT16, RNE).is_infinity

    def test_overflow_directed(self):
        big = Fraction(10) ** 10
        assert round_real(big, FLOAT16, RTZ).value == 65504
        assert round_real(big, FLOAT16, RTN).value == 65504
        assert round_real(big, FLOAT16, RTP).is_infinity
        assert round_real(-big, FLOAT16, RTP).value == -65504
        assert round_real(-big, FLOAT16, RTN).is_infinity

    def test_overflow_round_to_odd(self):
        big = Fraction(10) ** 10
        v = round_real(big, FLOAT16, RTO)
        assert v.value == 65504 and v.bits & 1 == 1

    def test_underflow_to_zero_signs(self):
        tiny = FLOAT16.min_subnormal / 4
        assert round_real(tiny, FLOAT16, RNE).bits == 0
        assert round_real(-tiny, FLOAT16, RNE).bits == FLOAT16.sign_mask
        assert round_real(-tiny, FLOAT16, RTP).bits == FLOAT16.sign_mask
        assert round_real(tiny, FLOAT16, RTP).value == FLOAT16.min_subnormal
        assert round_real(-tiny, FLOAT16, RTN).value == -FLOAT16.min_subnormal

    def test_underflow_round_to_odd_never_zero(self):
        tiny = FLOAT16.min_subnormal / 1000
        v = round_real(tiny, FLOAT16, RTO)
        assert v.value == FLOAT16.min_subnormal
        v = round_real(-tiny, FLOAT16, RTO)
        assert v.value == -FLOAT16.min_subnormal

    def test_subnormal_to_normal_promotion(self):
        # Just below min_normal rounds up into the normal range.
        x = FLOAT16.min_normal - FLOAT16.min_subnormal / 3
        assert round_real(x, FLOAT16, RTP).value == FLOAT16.min_normal

    def test_zero(self):
        for mode in list(IEEE_MODES) + [RTO]:
            v = round_real(Fraction(0), FLOAT16, mode)
            assert v.bits == 0


class TestRoundToOddDoubleRounding:
    """The RLibm-All theorem: round-to-odd at n+2 bits then any IEEE mode at
    k <= n bits equals direct rounding, provided k > |E| + 1."""

    @settings(max_examples=400)
    @given(rationals(max_num=10**8), st.sampled_from(IEEE_MODES))
    def test_double_rounding_t8_via_t10(self, x, mode):
        ro = round_real(x, T10, RTO)
        if not ro.is_finite:
            return
        two_step = round_real(ro.value, T8, mode)
        direct = round_real(x, T8, mode)
        # Values beyond T10's max lose the overflow distinction; the
        # theorem only covers reals within the oracle's dynamic range.
        if abs(x) >= T10.max_value:
            return
        assert two_step.bits == direct.bits, (
            f"x={x} mode={mode}: two-step {two_step!r} direct {direct!r}"
        )

    @settings(max_examples=200)
    @given(
        st.fractions(
            min_value=Fraction(-70000),
            max_value=Fraction(70000),
            max_denominator=10**6,
        ),
        st.sampled_from(IEEE_MODES),
    )
    def test_double_rounding_half_via_18bit(self, x, mode):
        wide = FLOAT16.widen(2)
        ro = round_real(x, wide, RTO)
        if not ro.is_finite or abs(x) >= wide.max_value:
            return
        assert round_real(ro.value, FLOAT16, mode).bits == round_real(x, FLOAT16, mode).bits
