"""Tests for FPFormat structural quantities."""

from fractions import Fraction

import pytest

from repro.fp import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    FLOAT34_RO,
    FLOAT64,
    FPFormat,
    TENSORFLOAT32,
)


def test_float32_layout():
    assert FLOAT32.mantissa_bits == 23
    assert FLOAT32.precision == 24
    assert FLOAT32.bias == 127
    assert FLOAT32.emax == 127
    assert FLOAT32.emin == -126


def test_float64_layout():
    assert FLOAT64.mantissa_bits == 52
    assert FLOAT64.bias == 1023
    assert FLOAT64.emax == 1023
    assert FLOAT64.emin == -1022


def test_float16_layout():
    assert FLOAT16.mantissa_bits == 10
    assert FLOAT16.bias == 15
    assert FLOAT16.max_value == Fraction(65504)
    assert FLOAT16.min_normal == Fraction(1, 1 << 14)
    assert FLOAT16.min_subnormal == Fraction(1, 1 << 24)


def test_bfloat16_layout():
    assert BFLOAT16.mantissa_bits == 7
    assert BFLOAT16.exponent_bits == 8
    assert BFLOAT16.emax == FLOAT32.emax
    assert BFLOAT16.emin == FLOAT32.emin


def test_tensorfloat32_layout():
    assert TENSORFLOAT32.total_bits == 19
    assert TENSORFLOAT32.mantissa_bits == 10
    assert TENSORFLOAT32.exponent_bits == 8


def test_float32_extremes():
    assert FLOAT32.max_value == Fraction((1 << 24) - 1, 1 << 23) * Fraction(2) ** 127
    assert FLOAT32.min_subnormal == Fraction(2) ** -149


def test_widen_is_ro_target():
    assert FLOAT32.widen(2) == FLOAT34_RO
    assert FLOAT32.widen(2).exponent_bits == 8
    assert FLOAT32.widen(2).mantissa_bits == 25


def test_contains_format_nested_family():
    assert FLOAT32.contains_format(BFLOAT16)
    assert FLOAT32.contains_format(TENSORFLOAT32)
    assert TENSORFLOAT32.contains_format(BFLOAT16)
    assert not BFLOAT16.contains_format(TENSORFLOAT32)


def test_contains_format_wider_exponent():
    assert FLOAT64.contains_format(FLOAT32)
    assert FLOAT64.contains_format(FLOAT16)
    assert not FLOAT32.contains_format(FLOAT64)
    # float32 cannot hold half's values?  It can: wider exponent and more
    # mantissa bits, and half's subnormals are float32 normals.
    assert FLOAT32.contains_format(FLOAT16)


def test_overflow_threshold():
    ulp_max = Fraction(2) ** (FLOAT16.emax - FLOAT16.mantissa_bits)
    assert FLOAT16.overflow_threshold == FLOAT16.max_value + ulp_max / 2
    assert FLOAT16.overflow_threshold == Fraction(65520)


def test_invalid_formats_rejected():
    with pytest.raises(ValueError):
        FPFormat(4, 1)
    with pytest.raises(ValueError):
        FPFormat(5, 4)  # no mantissa bits left


def test_format_ordering():
    assert BFLOAT16 < TENSORFLOAT32 < FLOAT32
    assert sorted([FLOAT32, BFLOAT16, TENSORFLOAT32]) == [
        BFLOAT16,
        TENSORFLOAT32,
        FLOAT32,
    ]


def test_masks():
    assert FLOAT32.sign_mask == 0x8000_0000
    assert FLOAT32.exponent_mask == 0x7F80_0000
    assert FLOAT32.mantissa_mask == 0x007F_FFFF
