"""The repro.api facade: sessions, round trips, and root re-exports."""

import sqlite3
from fractions import Fraction

import pytest

import repro
from repro import api
from repro.funcs import MINI_CONFIG, TINY_CONFIG
from repro.fp import RoundingMode
from repro.fp.format import T8
from repro.mp import Oracle
from repro.parallel import CachedOracle


def test_resolve_family():
    assert api.resolve_family("tiny") is TINY_CONFIG
    assert api.resolve_family(MINI_CONFIG) is MINI_CONFIG
    with pytest.raises(ValueError, match="unknown family"):
        api.resolve_family("huge")


def test_facade_reexported_from_root():
    for name in (
        "api", "build_table", "evaluate", "generate", "load_library",
        "make_evaluator", "oracle_session", "resolve_family", "table_index",
        "verify",
    ):
        assert hasattr(repro, name), name
    assert repro.evaluate is api.evaluate
    assert repro.verify is api.verify
    # Binding the facade's `verify` does not break subpackage imports.
    from repro.verify import verify_exhaustive  # noqa: F401


def test_oracle_session_plain():
    with api.oracle_session() as oracle:
        assert isinstance(oracle, Oracle)
        v = oracle.correctly_rounded(
            "exp2", Fraction(3), T8, RoundingMode.RNE
        )
        assert v.to_float() == 8.0


def test_oracle_session_closes_on_error(tmp_path):
    path = tmp_path / "cache.sqlite"
    with pytest.raises(RuntimeError):
        with api.oracle_session(path) as oracle:
            assert isinstance(oracle, CachedOracle)
            oracle.correctly_rounded("exp2", Fraction(3), T8, RoundingMode.RNE)
            raise RuntimeError("boom")
    # The sqlite handle was closed on the error path...
    with pytest.raises(sqlite3.ProgrammingError):
        oracle.cache._conn.execute("SELECT 1")
    # ...and pending entries were flushed to disk first.
    with api.oracle_session(path, read_only=True) as reopened:
        assert len(reopened.cache) == 1


def test_generate_verify_evaluate_round_trip(tmp_path, oracle):
    gen, path = api.generate(
        "exp2", "tiny", out_dir=tmp_path, oracle=oracle
    )
    assert path is not None and path.exists()
    assert gen.name == "exp2"

    reports = api.verify(
        "exp2", "tiny", directory=tmp_path, oracle=oracle
    )
    assert len(reports) == TINY_CONFIG.levels
    assert all(rep.wrong == 0 for rep in reports)

    res = api.evaluate(
        "exp2", [3.0, 1.0], family="tiny", fmt="t8",
        directory=tmp_path, oracle=oracle,
    )
    assert res.values == [8.0, 2.0]
    assert res.tiers == ["vector", "vector"]


def test_generate_without_save(tmp_path, oracle):
    gen, path = api.generate("exp2", "tiny", save=False, oracle=oracle)
    assert path is None
    assert gen.num_pieces >= 1


def test_load_library_shipped_artifacts():
    lib = api.load_library("tiny", names=("exp2", "log2"))
    assert lib.exp2(3.0) == 8.0
    assert lib.log2(8.0) == 3.0


def test_make_evaluator_matches_library():
    ev = api.make_evaluator("tiny", names=("exp2",))
    lib = api.load_library("tiny", names=("exp2",))
    xs = [0.5, 1.0, 2.0, 3.0]
    res = ev.evaluate("exp2", xs, fmt="t10")
    fmt = res.fmt
    from repro.fp import round_real

    want = [
        lib.exp2.rounded(
            round_real(Fraction(x), fmt, RoundingMode.RNE)
        ).bits
        for x in xs
    ]
    assert res.bits == want


def test_build_table_and_index_facade(tmp_path, oracle):
    gen, _ = api.generate("log2", "tiny", out_dir=tmp_path, oracle=oracle)
    path = api.build_table("log2", "tiny", fmt="t8", directory=tmp_path)
    assert path.exists()
    rows = api.table_index(tmp_path)
    assert [r["fn"] for r in rows if "error" not in r] == ["log2"]
    # The evaluator picks the table up and serves from it.
    ev = api.make_evaluator("tiny", directory=tmp_path, names=("log2",))
    res = ev.evaluate("log2", [1.0, 8.0], fmt="t8")
    assert res.tiers == ["table", "table"]
    assert list(res.values) == [0.0, 3.0]


def test_make_evaluator_custom_tiers():
    ev = api.make_evaluator(
        "tiny", names=("exp2",), tiers=("vector", "scalar", "oracle")
    )
    assert ev.tiers.names() == ("vector", "scalar", "oracle")


def test_artifact_index_lists_shipped_families():
    rows = list(api.artifact_index())
    seen = {(fam, fn) for fam, fn, _gen in rows}
    assert ("tiny", "exp2") in seen
    assert ("tiny", "log2") in seen
    fam, fn, gen = next(r for r in rows if r[:2] == ("tiny", "exp2"))
    assert gen.num_pieces >= 1
