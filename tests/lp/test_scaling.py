"""Row/column scaling helpers of the LP model layer."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.lp.model import ConstraintRow, column_scales, solve_margin_lp, _row_scale

F = Fraction


class TestColumnScales:
    def test_powers_of_two(self):
        rows = [
            ConstraintRow((F(1, 1024), F(3)), F(0), F(1)),
            ConstraintRow((F(1, 2048), F(5)), F(0), F(1)),
        ]
        s = column_scales(rows, 2)
        # Scales are powers of two bringing max |entry| into [1, 2).
        for sc in s:
            assert sc.numerator == 1 or sc.denominator == 1
            n = sc.numerator * sc.denominator  # one of them is 1
            assert n & (n - 1) == 0
        assert s[0] == 1024
        assert s[1] == F(1, 4)

    def test_zero_column(self):
        rows = [ConstraintRow((F(0), F(1)), F(0), F(1))]
        s = column_scales(rows, 2)
        assert s[0] == 1

    @settings(max_examples=50)
    @given(st.data())
    def test_scaling_preserves_solutions(self, data):
        # Solving with extreme column magnitudes must agree with the same
        # system pre-scaled by hand.
        k = 3
        rows = []
        for _ in range(6):
            x = F(data.draw(st.integers(-100, 100)), 1 << 20)
            val = F(1) + x * 7 + x * x * 3
            w = F(1, 1000)
            rows.append(
                ConstraintRow((F(1), x, x * x), val - w, val + w)
            )
        sol = solve_margin_lp(rows, k)
        assert sol is not None
        for row in rows:
            v = sum(m * c for m, c in zip(row.coeffs, sol.coefficients))
            assert row.lo <= v <= row.hi


class TestRowScale:
    def test_normalizes_magnitude(self):
        row = ConstraintRow((F(1, 2**130),), F(1, 2**131), F(3, 2**130))
        rs = _row_scale(row)
        mags = [abs(c) * rs for c in row.coeffs if c] + [abs(row.hi) * rs]
        assert max(mags) >= F(1, 2)
        assert max(mags) < 4

    def test_empty_row(self):
        row = ConstraintRow((F(0),), None, None)
        assert _row_scale(row) == 1
