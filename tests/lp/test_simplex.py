"""Exact simplex vs scipy.linprog cross-checks and hand cases."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lp import LPStatus, solve_lp, solve_lp_wide

F = Fraction


def run_scipy(c, A, b):
    # scipy minimizes; our solver maximizes.
    res = linprog(
        [-float(ci) for ci in c],
        A_ub=np.array([[float(v) for v in row] for row in A]),
        b_ub=np.array([float(bi) for bi in b]),
        bounds=[(0, None)] * len(c),
        method="highs",
    )
    return res


class TestHandCases:
    def test_simple_optimal(self):
        # max x + y s.t. x + y <= 4, x <= 3, y <= 2
        res = solve_lp(
            [F(1), F(1)],
            [[F(1), F(1)], [F(1), F(0)], [F(0), F(1)]],
            [F(4), F(3), F(2)],
        )
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == 4

    def test_unbounded(self):
        res = solve_lp([F(1)], [[F(-1)]], [F(1)])
        assert res.status is LPStatus.UNBOUNDED

    def test_infeasible(self):
        # x <= 1 and -x <= -2  (x >= 2): infeasible? x in [2, 1] empty.
        res = solve_lp([F(1)], [[F(1)], [F(-1)]], [F(1), F(-2)])
        assert res.status is LPStatus.INFEASIBLE

    def test_negative_rhs_feasible(self):
        # x >= 1 (as -x <= -1), x <= 3, max -x -> x = 1... maximize c=-1*x
        res = solve_lp([F(-1)], [[F(-1)], [F(1)]], [F(-1), F(3)])
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == 1

    def test_degenerate(self):
        # Multiple constraints active at the optimum.
        res = solve_lp(
            [F(1), F(1)],
            [[F(1), F(0)], [F(0), F(1)], [F(1), F(1)]],
            [F(1), F(1), F(2)],
        )
        assert res.objective == 2

    def test_fractional_answer_exact(self):
        # max x s.t. 3x <= 1 -> x = 1/3 exactly.
        res = solve_lp([F(1)], [[F(3)]], [F(1)])
        assert res.x[0] == F(1, 3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            solve_lp([F(1)], [[F(1), F(2)]], [F(1)])

    def test_shadow_prices_basic(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
        res = solve_lp(
            [F(3), F(2)], [[F(1), F(1)], [F(1), F(3)]], [F(4), F(6)]
        )
        assert res.status is LPStatus.OPTIMAL
        y = res.duals
        # Duality: y1 + y2 >= 3, y1 + 3 y2 >= 2, objective = 4 y1 + 6 y2.
        assert 4 * y[0] + 6 * y[1] == res.objective


@st.composite
def random_lp(draw, max_m=8, max_n=5):
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    ints = st.integers(-6, 6)
    A = [[F(draw(ints)) for _ in range(n)] for _ in range(m)]
    b = [F(draw(st.integers(-4, 10))) for _ in range(m)]
    c = [F(draw(ints)) for _ in range(n)]
    return c, A, b


class TestAgainstScipy:
    @settings(max_examples=120, deadline=None)
    @given(random_lp())
    def test_status_and_objective_match(self, lp):
        c, A, b = lp
        ours = solve_lp(c, A, b)
        ref = run_scipy(c, A, b)
        if ours.status is LPStatus.OPTIMAL:
            assert ref.status == 0, f"scipy disagrees: {ref.status}"
            assert abs(float(ours.objective) + ref.fun) <= 1e-6 * (
                1 + abs(ref.fun)
            )
            # Our solution must satisfy every constraint exactly.
            for row, bi in zip(A, b):
                assert sum(r * x for r, x in zip(row, ours.x)) <= bi
            assert all(x >= 0 for x in ours.x)
        elif ours.status is LPStatus.INFEASIBLE:
            assert ref.status == 2
        else:
            # UNBOUNDED.  HiGHS sometimes reports an unbounded primal as
            # "infeasible" (its presolve proves dual infeasibility and stops),
            # so accept 2/3/4 — but only after independently confirming the
            # primal is feasible, which together with our claim means
            # "feasible and unbounded" cannot be confused with "infeasible".
            assert ref.status in (2, 3, 4)
            feas = run_scipy([F(0)] * len(c), A, b)
            assert feas.status == 0, "unbounded claim on an infeasible LP"

    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_wide_solver_matches_direct(self, lp):
        c, A, b = lp
        direct = solve_lp(c, A, b)
        if direct.status is LPStatus.UNBOUNDED:
            return  # wide solver requires a feasible dual
        try:
            wide = solve_lp_wide(c, A, b)
        except ValueError:
            # Dual infeasible: legitimate only when the primal is too.
            assert direct.status is LPStatus.INFEASIBLE
            return
        assert wide.status == direct.status
        if direct.status is LPStatus.OPTIMAL:
            assert wide.objective == direct.objective
            for row, bi in zip(A, b):
                assert sum(r * x for r, x in zip(row, wide.x)) <= bi
            assert all(x >= 0 for x in wide.x)
