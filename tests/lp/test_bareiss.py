"""Fraction-free (Bareiss) integer simplex: direct tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LPStatus, solve_lp
from repro.lp.bareiss import scale_to_integers, solve_lp_int

F = Fraction


class TestScaleToIntegers:
    def test_clears_denominators(self):
        c, A, b = scale_to_integers(
            [F(1, 2), F(1, 3)],
            [[F(1, 4), F(1)], [F(2), F(1, 6)]],
            [F(1, 2), F(3)],
        )
        assert c == [3, 2]
        assert A == [[1, 4], [12, 1]]
        assert b == [2, 18]

    def test_integer_passthrough(self):
        c, A, b = scale_to_integers([F(2)], [[F(3)]], [F(4)])
        assert (c, A, b) == ([2], [[3]], [4])


class TestSolveLpInt:
    def test_simple(self):
        res = solve_lp_int([1, 1], [[1, 1], [1, 0], [0, 1]], [4, 3, 2])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == 4

    def test_fractional_vertex_exact(self):
        # max x + y s.t. 2x + y <= 3, x + 2y <= 3 -> x = y = 1.
        res = solve_lp_int([1, 1], [[2, 1], [1, 2]], [3, 3])
        assert res.x == [F(1), F(1)]
        # max 3x + y: vertex x=3/2, y=0.
        res = solve_lp_int([3, 1], [[2, 1], [1, 2]], [3, 3])
        assert res.x[0] == F(3, 2)

    def test_infeasible(self):
        res = solve_lp_int([1], [[1], [-1]], [1, -2])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = solve_lp_int([1], [[-1]], [0])
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_phase1(self):
        # x >= 2 (as -x <= -2), x <= 5: max x -> 5.
        res = solve_lp_int([1], [[-1], [1]], [-2, 5])
        assert res.status is LPStatus.OPTIMAL
        assert res.x == [F(5)]

    def test_shadow_prices(self):
        res = solve_lp_int([3, 2], [[1, 1], [1, 3]], [4, 6])
        y = res.duals
        assert 4 * y[0] + 6 * y[1] == res.objective
        assert all(v >= 0 for v in y)

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            solve_lp_int([1], [[1, 2]], [3])

    def test_big_integer_data(self):
        # Entries at the scale of dyadic interval bounds (~2^120).
        s = 1 << 120
        res = solve_lp_int([1], [[1]], [s])
        assert res.x == [F(s)]
        res = solve_lp_int([1], [[s]], [1])
        assert res.x == [F(1, s)]

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_agrees_with_fraction_simplex(self, data):
        m = data.draw(st.integers(1, 6))
        n = data.draw(st.integers(1, 4))
        ints = st.integers(-5, 5)
        A = [[data.draw(ints) for _ in range(n)] for _ in range(m)]
        b = [data.draw(st.integers(-3, 8)) for _ in range(m)]
        c = [data.draw(ints) for _ in range(n)]
        fast = solve_lp_int(c, A, b)
        ref = solve_lp(
            [F(v) for v in c],
            [[F(v) for v in row] for row in A],
            [F(v) for v in b],
        )
        assert fast.status == ref.status
        if ref.status is LPStatus.OPTIMAL:
            assert fast.objective == ref.objective
            # The integer solver's solution is exactly feasible.
            for row, bi in zip(A, b):
                assert sum(F(v) * x for v, x in zip(row, fast.x)) <= bi
            assert all(x >= 0 for x in fast.x)
