"""Margin LP model: fitting polynomials through interval constraints."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.lp import ConstraintRow, check_rows, solve_margin_lp

F = Fraction


def poly_row(x: Fraction, k: int, lo, hi) -> ConstraintRow:
    return ConstraintRow(tuple(x**j for j in range(k)), lo, hi)


class TestSolveMarginLP:
    def test_interpolation_line(self):
        # Fit C0 + C1 x through [1,1] at x=0 and [3,3] at x=1.
        rows = [
            poly_row(F(0), 2, F(1), F(1)),
            poly_row(F(1), 2, F(3), F(3)),
        ]
        sol = solve_margin_lp(rows, 2)
        assert sol is not None
        assert sol.coefficients == [F(1), F(2)]
        # Singleton intervals have zero slab width, so they do not bound
        # delta at all; the margin rides to the cap.
        assert sol.margin == 1

    def test_margin_is_maximized(self):
        # One slab constraint: value in [0, 2] at x=0 -> C0 = 1 centered.
        rows = [poly_row(F(0), 1, F(0), F(2))]
        sol = solve_margin_lp(rows, 1)
        assert sol is not None
        assert sol.margin == 1  # capped at 1 (fully centered)
        assert sol.coefficients[0] == F(1)

    def test_infeasible(self):
        rows = [
            poly_row(F(0), 1, F(0), F(1)),
            poly_row(F(0), 1, F(2), F(3)),  # C0 in [0,1] and [2,3]
        ]
        assert solve_margin_lp(rows, 1) is None

    def test_one_sided_rows(self):
        rows = [
            ConstraintRow((F(1),), F(5), None),
            ConstraintRow((F(1),), None, F(7)),
        ]
        sol = solve_margin_lp(rows, 1)
        assert sol is not None
        assert F(5) <= sol.coefficients[0] <= F(7)

    def test_negative_coefficients(self):
        rows = [
            poly_row(F(0), 2, F(-2), F(-2)),
            poly_row(F(1), 2, F(-5), F(-5)),
        ]
        sol = solve_margin_lp(rows, 2)
        assert sol.coefficients == [F(-2), F(-3)]

    def test_tiny_scales(self):
        # Constraints at the scale of subnormal outputs must stay exact.
        s = F(1, 2**120)
        rows = [
            poly_row(F(0), 2, s, 3 * s),
            poly_row(F(1, 2**7), 2, 5 * s, 9 * s),
        ]
        sol = solve_margin_lp(rows, 2)
        assert sol is not None
        assert not check_rows(rows, sol.coefficients)

    def test_quadratic_through_exp_like_intervals(self):
        # Narrow intervals around exp(x) on small reduced inputs; a
        # quadratic has enough freedom.
        import math

        rows = []
        for i in range(-8, 9):
            x = F(i, 2**10)
            mid = F(math.exp(float(x))).limit_denominator(10**12)
            w = F(1, 10**6)
            rows.append(poly_row(x, 3, mid - w, mid + w))
        sol = solve_margin_lp(rows, 3)
        assert sol is not None
        assert not check_rows(rows, sol.coefficients)
        assert sol.margin > 0

    def test_check_rows_reports_violations(self):
        rows = [
            poly_row(F(0), 1, F(0), F(1)),
            poly_row(F(1), 1, F(5), F(6)),
        ]
        bad = check_rows(rows, [F(2)])
        assert bad == [0, 1]
        assert check_rows(rows, [F(1, 2)]) == [1]

    def test_empty_rows(self):
        sol = solve_margin_lp([], 3)
        assert sol is not None
        assert sol.coefficients == [F(0)] * 3

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_random_feasible_systems(self, data):
        """Build rows around a known polynomial; solver must succeed and the
        solution must satisfy every row exactly."""
        k = data.draw(st.integers(1, 4))
        true = [
            F(data.draw(st.integers(-50, 50)), data.draw(st.integers(1, 20)))
            for _ in range(k)
        ]
        rows = []
        npts = data.draw(st.integers(k, 12))
        for i in range(npts):
            x = F(data.draw(st.integers(-100, 100)), 128)
            val = sum(c * x**j for j, c in enumerate(true))
            w = F(data.draw(st.integers(0, 100)), 1000)
            rows.append(poly_row(x, k, val - w, val + w))
        sol = solve_margin_lp(rows, k)
        assert sol is not None
        assert not check_rows(rows, sol.coefficients)
