"""The RLibm-All piecewise baseline generator."""

import numpy as np
import pytest

from repro.core import collect_constraints, runtime_interval_failures
from repro.core.constraints import ConstraintSystem
from repro.core.rlibm_all import generate_rlibm_all, solve_piece_direct
from repro.funcs import TINY_CONFIG, make_pipeline


@pytest.fixture(scope="module")
def exp2_setup(oracle):
    pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
    cons, _ = collect_constraints(pipe)
    return pipe, cons


class TestSolvePieceDirect:
    def test_solves_feasible(self, exp2_setup):
        pipe, cons = exp2_setup
        shapes = pipe.shapes((3,))
        system = ConstraintSystem(cons, shapes, [(3,)] * 2)
        coeffs = solve_piece_direct(system, np.random.default_rng(0))
        assert coeffs is not None
        assert len(system.violations(coeffs)) == 0

    def test_reports_infeasible(self, exp2_setup):
        pipe, cons = exp2_setup
        shapes = pipe.shapes((1,))
        system = ConstraintSystem(cons, shapes, [(1,)] * 2)
        assert solve_piece_direct(system, np.random.default_rng(0)) is None

    def test_empty_system(self, exp2_setup):
        pipe, _ = exp2_setup
        system = ConstraintSystem([], pipe.shapes((2,)), [(2,)] * 2)
        assert solve_piece_direct(system, np.random.default_rng(0)) is not None


class TestGenerateRlibmAll:
    def test_baseline_correct_and_nonprogressive(self, exp2_setup):
        pipe, cons = exp2_setup
        gen = generate_rlibm_all(pipe, cons, max_terms=5)
        # Non-progressive: every level evaluates the full polynomial.
        for piece in gen.pieces:
            counts = piece.poly.term_counts
            assert all(c == counts[-1] for c in counts)
        assert runtime_interval_failures(pipe, gen, cons) == []

    def test_prefers_low_terms_with_pieces(self, exp2_setup):
        pipe, cons = exp2_setup
        # Force a low term budget: the generator must split the domain.
        gen = generate_rlibm_all(pipe, cons, max_terms=2, min_pieces=1)
        assert gen.pieces[0].poly.term_counts[-1][0] <= 2
        assert gen.num_pieces >= 2
        assert runtime_interval_failures(pipe, gen, cons) == []

    def test_min_pieces_respected(self, exp2_setup):
        pipe, cons = exp2_setup
        forced = generate_rlibm_all(pipe, cons, max_terms=5, min_pieces=4)
        assert forced.num_pieces >= 4
        assert forced.storage_bytes == sum(
            p.poly.storage_bytes() for p in forced.pieces
        )
