"""Weighted random sampling (Efraimidis-Spirakis) and the weight multiset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import WeightState, weighted_sample_indices


class TestWeightedSampleIndices:
    def test_size_and_uniqueness(self):
        rng = np.random.default_rng(0)
        w = np.ones(100)
        idx = weighted_sample_indices(w, 10, rng)
        assert len(idx) == 10
        assert len(set(idx.tolist())) == 10
        assert ((0 <= idx) & (idx < 100)).all()

    def test_requesting_everything(self):
        rng = np.random.default_rng(0)
        idx = weighted_sample_indices(np.ones(5), 10, rng)
        assert list(idx) == [0, 1, 2, 3, 4]

    def test_heavy_item_always_sampled(self):
        # One item with overwhelming weight should essentially always be
        # included in any reasonably sized sample.
        rng = np.random.default_rng(1)
        w = np.ones(200)
        w[17] = 2.0**60
        hits = sum(
            17 in weighted_sample_indices(w, 20, rng) for _ in range(50)
        )
        assert hits == 50

    def test_weight_proportionality(self):
        # Item with weight 9 vs items with weight 1: inclusion frequency in
        # a size-1 sample should be about 9/(9 + n - 1).
        rng = np.random.default_rng(7)
        n = 10
        w = np.ones(n)
        w[3] = 9.0
        trials = 4000
        hits = sum(
            3 in weighted_sample_indices(w, 1, rng) for _ in range(trials)
        )
        expected = trials * 9 / (9 + n - 1)
        assert abs(hits - expected) < 4 * np.sqrt(trials * 0.5 * 0.5)

    @settings(max_examples=30)
    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 2**31))
    def test_random_shapes(self, n, s, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(n) + 0.01
        idx = weighted_sample_indices(w, s, rng)
        assert len(idx) == min(n, s)
        assert len(set(idx.tolist())) == len(idx)


class TestWeightState:
    def test_initial_weights_uniform(self):
        ws = WeightState(5)
        assert np.allclose(ws.weights, 1.0)

    def test_double(self):
        ws = WeightState(4)
        ws.double(np.array([1, 3]))
        w = ws.weights
        assert w[1] == 2 * w[0]
        assert w[3] == 2 * w[2]

    def test_many_doublings_no_overflow(self):
        ws = WeightState(3)
        for _ in range(5000):
            ws.double(np.array([0]))
        w = ws.weights
        assert np.isfinite(w).all()
        assert w[0] == 1.0  # normalized by max
        assert w[1] == 0.0 or w[1] < 1e-300  # vastly lighter

    def test_split_weight(self):
        ws = WeightState(4)
        ws.double(np.array([0]))  # weights 2,1,1,1
        wv, wsat = ws.split_weight(np.array([0, 1]))
        assert wv == pytest.approx(3 / 2)  # normalized by max=2: 1 + 0.5
        assert wsat == pytest.approx(1.0)

    def test_split_weight_empty(self):
        ws = WeightState(3)
        wv, wsat = ws.split_weight(np.array([], dtype=np.int64))
        assert wv == 0.0
        assert wsat == pytest.approx(3.0)
