"""Constraint system construction and violation screening."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.constraints import ConstraintSystem, ReducedConstraint
from repro.core.polynomial import PolyShape

F = Fraction


def simple_system(term_counts=((2,), (3,))):
    shape = PolyShape.dense(3)
    cons = [
        ReducedConstraint(F(0), 0, F(1), F(2)),
        ReducedConstraint(F(1, 2), 1, F(0), F(10)),
        ReducedConstraint(F(1, 4), 1, None, F(5)),
    ]
    return ConstraintSystem(cons, [shape], term_counts)


class TestRowBuilding:
    def test_truncation_zeros_high_terms(self):
        sys = simple_system()
        row0 = sys.rows[0]  # level 0 -> 2 terms
        assert row0.coeffs == (F(1), F(0), F(0))  # x=0 kills x^1 too
        c = ReducedConstraint(F(1, 2), 0, F(0), F(1))
        sys2 = ConstraintSystem([c], [PolyShape.dense(3)], ((2,), (3,)))
        assert sys2.rows[0].coeffs == (F(1), F(1, 2), F(0))

    def test_full_terms_at_top_level(self):
        sys = simple_system()
        assert sys.rows[1].coeffs == (F(1), F(1, 2), F(1, 4))

    def test_two_polynomials_with_mults(self):
        shapes = [PolyShape.odd(2), PolyShape.even(2)]
        c = ReducedConstraint(
            F(1, 2), 0, F(0), F(1), mults=(F(3), F(5))
        )
        sys = ConstraintSystem([c], shapes, ((2, 1),))
        # odd poly: 3*(x, x^3); even poly truncated to 1 term: 5*(1).
        assert sys.rows[0].coeffs == (F(3, 2), F(3, 8), F(5), F(0))

    def test_zero_mult_skips_polynomial(self):
        shapes = [PolyShape.dense(2), PolyShape.dense(2)]
        c = ReducedConstraint(F(1), 0, F(0), F(1), mults=(F(0), F(1)))
        sys = ConstraintSystem([c], shapes, ((2, 2),))
        assert sys.rows[0].coeffs == (F(0), F(0), F(1), F(1))

    def test_unbounded_sides(self):
        sys = simple_system()
        assert sys.lo[2] == -np.inf
        assert sys.hi[2] == 5.0

    def test_ncols(self):
        shapes = [PolyShape.dense(3), PolyShape.odd(2)]
        c = ReducedConstraint(F(1), 0, F(0), F(1), mults=(F(1), F(1)))
        sys = ConstraintSystem([c], shapes, ((3, 2),))
        assert sys.ncols == 5


class TestViolations:
    def test_satisfied(self):
        sys = simple_system()
        # C = (1.5, 0, 0): row0 value 1.5 in [1,2]; row1 1.5 in [0,10];
        # row2 1.5 <= 5.
        assert len(sys.violations([F(3, 2), F(0), F(0)])) == 0

    def test_violated(self):
        sys = simple_system()
        v = sys.violations([F(3), F(0), F(0)])
        assert list(v) == [0]  # 3 not in [1,2]; others satisfied

    def test_boundary_exact(self):
        # Value exactly on a bound is satisfied (closed intervals).
        shape = PolyShape.dense(1)
        c = ReducedConstraint(F(0), 0, F(1), F(2))
        sys = ConstraintSystem([c], [shape], ((1,),))
        assert len(sys.violations([F(2)])) == 0
        assert len(sys.violations([F(1)])) == 0
        assert list(sys.violations([F(2) + F(1, 10**30)])) == [0]
        assert list(sys.violations([F(1) - F(1, 10**30)])) == [0]

    def test_tiny_scale_bounds(self):
        # Bounds at subnormal-output scale must still screen correctly.
        s = F(1, 2**140)
        c = ReducedConstraint(F(1, 2), 0, s, 3 * s)
        sys = ConstraintSystem([c], [PolyShape.dense(2)], ((2,),))
        assert len(sys.violations([s, 2 * s])) == 0
        assert list(sys.violations([F(0), F(0)])) == [0]

    @settings(max_examples=60)
    @given(st.data())
    def test_matches_bruteforce(self, data):
        shape = PolyShape.dense(3)
        cons = []
        npts = data.draw(st.integers(1, 20))
        for _ in range(npts):
            x = F(data.draw(st.integers(-64, 64)), 64)
            lo = F(data.draw(st.integers(-100, 100)), 16)
            hi = lo + F(data.draw(st.integers(0, 50)), 16)
            level = data.draw(st.integers(0, 1))
            cons.append(ReducedConstraint(x, level, lo, hi))
        sys = ConstraintSystem(cons, [shape], ((2,), (3,)))
        coeffs = [
            F(data.draw(st.integers(-40, 40)), 8) for _ in range(3)
        ]
        got = set(int(i) for i in sys.violations(coeffs))
        want = set()
        for i, c in enumerate(cons):
            k = (2, 3)[c.level]
            val = sum(coeffs[j] * c.x**j for j in range(k))
            if val < c.lo or val > c.hi:
                want.add(i)
        assert got == want
