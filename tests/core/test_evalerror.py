"""Certified Horner evaluation error bounds."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evalerror import UNIT, generated_error_bound, horner_error_bound
from repro.core.polynomial import PolyShape, eval_double_horner, eval_exact


def observed_error(shape, coeffs, x: float, nterms=None) -> Fraction:
    got = Fraction(eval_double_horner(shape, coeffs, x, nterms))
    want = eval_exact(shape, [Fraction(c) for c in coeffs], Fraction(x), nterms)
    return abs(got - want)


class TestHornerErrorBound:
    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_bound_is_sound(self, data):
        kind = data.draw(st.sampled_from(["dense", "odd", "even"]))
        n = data.draw(st.integers(1, 6))
        shape = getattr(PolyShape, kind)(n)
        coeffs = [
            data.draw(st.floats(-4, 4).filter(lambda v: v == v))
            for _ in range(n)
        ]
        span = data.draw(st.floats(1e-6, 1.0))
        bound = horner_error_bound(shape, coeffs, -span, span)
        for _ in range(5):
            x = data.draw(st.floats(-span, span))
            assert observed_error(shape, coeffs, x) <= Fraction(bound.absolute) + Fraction(1, 10**300)

    def test_single_term_exact(self):
        # One dense term: no arithmetic at all.
        b = horner_error_bound(PolyShape.dense(1), [1.5], -1, 1)
        assert b.absolute == 0.0

    def test_zero_terms(self):
        b = horner_error_bound(PolyShape.dense(3), [1, 2, 3], -1, 1, nterms=0)
        assert b.absolute == 0.0

    def test_scaling_with_terms(self):
        coeffs = [1.0, 0.7, 0.3, 0.1, 0.05, 0.01]
        b2 = horner_error_bound(PolyShape.dense(6), coeffs, -0.01, 0.01, 2)
        b6 = horner_error_bound(PolyShape.dense(6), coeffs, -0.01, 0.01, 6)
        assert b2.absolute <= b6.absolute

    def test_magnitude_reported(self):
        b = horner_error_bound(PolyShape.dense(2), [2.0, 1.0], -0.5, 0.5)
        assert 2.4 <= b.value_magnitude <= 2.6

    def test_relative_error_tiny_for_exp_like(self):
        # exp2-style kernel: relative error must be a few units roundoff.
        coeffs = [1.0, 0.6931471805599453, 0.2402265069591007]
        b = horner_error_bound(PolyShape.dense(3), coeffs, -0.011, 0.011)
        assert b.relative < 8 * UNIT

    def test_irregular_shape_rejected(self):
        with pytest.raises(ValueError):
            horner_error_bound(PolyShape((0, 3)), [1.0, 2.0], -1, 1)


class TestGeneratedErrorBound:
    def test_bound_justifies_slop(self, tiny_generated):
        """The generator's relative rounding slop (2^-48) must dominate the
        certified evaluation error of every generated kernel."""
        for name in ("exp2", "log2", "sinh", "sinpi"):
            _, gen = tiny_generated(name)
            for piece in range(gen.num_pieces):
                for level in range(len(gen.pieces[0].poly.term_counts)):
                    b = generated_error_bound(gen, piece, level)
                    if b.value_magnitude == 0:
                        continue
                    assert b.relative < 2.0**-48, (name, piece, level, b)

    def test_observed_within_bound(self, tiny_generated):
        random.seed(0)
        _, gen = tiny_generated("exp2")
        poly = gen.pieces[0].poly
        b = generated_error_bound(gen, 0)
        span = 2.0**-4
        for _ in range(100):
            x = random.uniform(-span, span)
            err = observed_error(
                poly.shapes[0], poly.double_coefficients[0], x
            )
            assert err <= Fraction(b.absolute)
