"""GeneratedFunction container behavior (pieces, dispatch, accounting)."""

from fractions import Fraction

import pytest

from repro.core.polynomial import PolyShape, ProgressivePolynomial
from repro.core.search import GeneratedFunction, GenerationError, Piece, generate_function

F = Fraction


def poly(c0):
    return ProgressivePolynomial(
        shapes=(PolyShape.dense(2),),
        coefficients=((F(c0), F(1)),),
        term_counts=((1,), (2,)),
    )


@pytest.fixture
def three_piece():
    return GeneratedFunction(
        "demo",
        "test",
        [Piece(poly(1), -0.5), Piece(poly(2), 0.5), Piece(poly(3), None)],
        {},
    )


class TestPieceDispatch:
    def test_boundaries(self, three_piece):
        gf = three_piece
        assert gf.piece_for(-1.0).coefficients[0][0] == 1
        assert gf.piece_for(-0.5).coefficients[0][0] == 2  # bound -> upper
        assert gf.piece_for(0.0).coefficients[0][0] == 2
        assert gf.piece_for(0.5).coefficients[0][0] == 3
        assert gf.piece_for(7.0).coefficients[0][0] == 3

    def test_counts_and_storage(self, three_piece):
        assert three_piece.num_pieces == 3
        assert three_piece.storage_bytes == 3 * 2 * 8
        assert three_piece.max_degree() == 1
        assert three_piece.max_degree(0) == 0

    def test_term_counts_listing(self, three_piece):
        tc = three_piece.term_counts()
        assert len(tc) == 3
        assert tc[0] == ((1,), (2,))


class TestGenerationErrors:
    def test_impossible_budget_raises(self, oracle):
        from repro.funcs import TINY_CONFIG, make_pipeline

        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        with pytest.raises(GenerationError):
            generate_function(
                pipe, max_terms=1, max_subdomains=1, max_iterations=6
            )
