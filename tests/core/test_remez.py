"""The Remez exchange minimax fitter."""

import math

import numpy as np
import pytest

from repro.core.polynomial import PolyShape, eval_double_horner
from repro.core.remez import chebyshev_nodes, fit_shape, remez_fit


class TestChebyshevNodes:
    def test_count_and_range(self):
        nodes = chebyshev_nodes(-1.0, 1.0, 7)
        assert len(nodes) == 7
        assert all(-1 <= x <= 1 for x in nodes)

    def test_mapped(self):
        nodes = chebyshev_nodes(2.0, 4.0, 5)
        assert all(2 <= x <= 4 for x in nodes)


class TestRemezFit:
    def test_exact_polynomial_recovered(self):
        def f(x):
            return 3.0 - 2.0 * x + 0.5 * x * x

        coeffs, err, _ = remez_fit(f, -1.0, 1.0, 4)
        assert err < 1e-12
        assert coeffs[0] == pytest.approx(3.0, abs=1e-9)
        assert coeffs[1] == pytest.approx(-2.0, abs=1e-9)
        assert coeffs[2] == pytest.approx(0.5, abs=1e-9)

    def test_exp_on_small_interval(self):
        coeffs, err, _ = remez_fit(math.exp, -0.01, 0.01, 3)
        # Minimax error for 3 terms on [-h, h] is about
        # e^h * h^3 / (2^2 * 3!) ~ 4.2e-8; allow slack for the grid search.
        assert err < 1e-7
        xs = np.linspace(-0.01, 0.01, 101)
        worst = max(
            abs(eval_double_horner(PolyShape.dense(3), coeffs, float(x)) - math.exp(float(x)))
            for x in xs
        )
        assert worst <= err * 1.01

    def test_minimax_beats_taylor(self):
        # The levelled Remez error should be ~2x better than Taylor's
        # one-sided error for the same degree.
        h = 0.1
        coeffs, err, _ = remez_fit(math.exp, -h, h, 3)
        taylor = [1.0, 1.0, 0.5]
        xs = np.linspace(-h, h, 400)
        taylor_err = max(
            abs(eval_double_horner(PolyShape.dense(3), taylor, float(x)) - math.exp(float(x)))
            for x in xs
        )
        assert err < taylor_err / 1.5

    def test_error_equioscillates(self):
        h = 0.25
        coeffs, err, _ = remez_fit(math.exp, -h, h, 4)
        xs = np.linspace(-h, h, 2000)
        errs = np.array(
            [eval_double_horner(PolyShape.dense(4), coeffs, float(x)) - math.exp(float(x)) for x in xs]
        )
        # At least terms+1 alternations close to the levelled error.
        peaks = np.abs(errs) > 0.85 * err
        signs = np.sign(errs[peaks])
        alternations = 1 + int(np.sum(signs[1:] != signs[:-1]))
        assert alternations >= 5

    def test_more_terms_less_error(self):
        errs = [remez_fit(math.exp, -0.5, 0.5, k)[1] for k in (2, 3, 4, 5)]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < errs[0] / 1e3

    def test_rejects_zero_terms(self):
        with pytest.raises(ValueError):
            remez_fit(math.exp, -1, 1, 0)


class TestFitShape:
    def test_dense(self):
        fit = fit_shape(math.exp, -0.1, 0.1, PolyShape.dense(4))
        # Theory: e^h * h^4 / (2^3 * 4!) ~ 5.8e-7 for h = 0.1.
        assert fit.max_error < 2e-6
        assert fit(0.05) == pytest.approx(math.exp(0.05), abs=1e-5)

    def test_odd_sin(self):
        shape = PolyShape.odd(3)
        fit = fit_shape(math.sin, -0.5, 0.5, shape)
        assert fit.max_error < 1e-7
        assert fit(0.3) == pytest.approx(math.sin(0.3), abs=1e-6)
        assert fit(-0.3) == pytest.approx(-fit(0.3))

    def test_even_cos(self):
        shape = PolyShape.even(3)
        fit = fit_shape(math.cos, -0.5, 0.5, shape)
        assert fit.max_error < 1e-6
        assert fit(0.4) == pytest.approx(math.cos(0.4), abs=1e-5)

    def test_relative_weighting_near_zero(self):
        # log2(1+r) vanishes at 0: a relative fit must stay accurate there.
        def f(r):
            return math.log2(1.0 + r)

        shape = PolyShape.dense(4)
        fit = fit_shape(f, 1e-7, 2.0**-5, shape, relative=True)
        for r in (1e-6, 1e-4, 0.01, 0.03):
            got = fit(r)
            assert got == pytest.approx(f(r), rel=3 * fit.max_error + 1e-12)

    def test_irregular_shape_rejected(self):
        with pytest.raises(ValueError):
            fit_shape(math.exp, -1, 1, PolyShape((0, 3)))
