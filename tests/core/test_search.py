"""End-to-end generation on the tiny family."""

import math
from fractions import Fraction

import pytest

from repro.core import (
    collect_constraints,
    evaluate_generated,
    generate_function,
    runtime_interval_failures,
)
from repro.core.search import (
    GeneratedFunction,
    GenerationError,
    Piece,
    _absorb_runtime_failures,
    _split_by_r,
)
from repro.core.polynomial import ProgressivePolynomial
from repro.fp import RoundingMode, all_finite, round_real
from repro.funcs import TINY_CONFIG, make_pipeline


class TestGenerateFunction:
    def test_exp2_succeeds(self, tiny_generated):
        pipe, gen = tiny_generated("exp2")
        assert gen.name == "exp2"
        assert gen.num_pieces >= 1
        assert gen.stats.constraints > 100
        assert gen.stats.wall_seconds > 0

    def test_term_counts_monotone(self, tiny_generated):
        for name in ("exp2", "log2", "sinh"):
            _, gen = tiny_generated(name)
            for piece in gen.pieces:
                counts = piece.poly.term_counts
                for lo_counts, hi_counts in zip(counts, counts[1:]):
                    assert all(a <= b for a, b in zip(lo_counts, hi_counts))

    def test_progressive_gap_log(self, tiny_generated):
        # T8's mantissa equals the log table width, so its reduced input is
        # always 0 and one term (or none) suffices: a strict gap.
        _, gen = tiny_generated("log2")
        counts = gen.pieces[0].poly.term_counts
        assert counts[0][0] < counts[-1][0]

    def test_no_runtime_failures_after_generation(self, tiny_generated, oracle):
        pipe, gen = tiny_generated("log2")
        constraints, _ = collect_constraints(pipe)
        assert runtime_interval_failures(pipe, gen, constraints) == []

    def test_specials_within_budget(self, tiny_generated):
        for name in ("exp2", "log2", "sinpi", "cosh"):
            _, gen = tiny_generated(name)
            assert len(gen.specials) <= 4 * gen.num_pieces

    def test_correctly_rounded_exhaustive_rne(self, tiny_generated, oracle):
        pipe, gen = tiny_generated("exp2")
        for level, fmt in enumerate(TINY_CONFIG.formats):
            for v in all_finite(fmt):
                xd = v.to_float()
                y = evaluate_generated(pipe, gen, xd, level)
                if math.isnan(y):
                    continue
                want = oracle.correctly_rounded(
                    "exp2", v.value, fmt, RoundingMode.RNE
                )
                if math.isinf(y):
                    got = round_real(
                        Fraction(2) ** 3000 * (1 if y > 0 else -1), fmt, RoundingMode.RNE
                    )
                else:
                    got = round_real(Fraction(y) if y else Fraction(0), fmt, RoundingMode.RNE)
                assert got.bits == want.bits or (
                    got.bits & ~fmt.sign_mask == 0 and want.bits & ~fmt.sign_mask == 0
                ), (xd, level)

    def test_piece_dispatch(self, tiny_generated):
        _, gen = tiny_generated("exp2")
        if gen.num_pieces == 1:
            assert gen.piece_for(0.0) is gen.pieces[0].poly
        else:
            assert gen.piece_for(-1e9) is gen.pieces[0].poly
            assert gen.piece_for(1e9) is gen.pieces[-1].poly

    def test_storage_accounting(self, tiny_generated):
        _, gen = tiny_generated("exp2")
        total_coeffs = sum(
            sum(len(cs) for cs in p.poly.coefficients) for p in gen.pieces
        )
        assert gen.storage_bytes == 8 * total_coeffs


class TestGenerationError:
    """The search's failure paths: budget exhaustion must raise, not loop."""

    def test_term_budget_exhaustion_raises(self, oracle):
        # exp2 on the tiny family cannot fit a single term even with the
        # maximum 4 sub-domains: phase 1 of _try_config never satisfies
        # the system, every nsplits attempt fails, and the outer loop
        # must surface a GenerationError naming the budgets.
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        with pytest.raises(GenerationError, match=r"within 1 terms and 1 sub-domains"):
            generate_function(pipe, max_terms=1, max_subdomains=1)

    def test_exhaustion_respects_subdomain_budget(self, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        with pytest.raises(GenerationError, match=r"4 sub-domains"):
            generate_function(pipe, max_terms=1, max_subdomains=4)

    def _zeroed(self, gen):
        """A copy of ``gen`` whose every coefficient is zero: the runtime
        re-check fails on nearly every input."""
        pieces = []
        for p in gen.pieces:
            poly = ProgressivePolynomial(
                shapes=p.poly.shapes,
                coefficients=tuple(
                    tuple(0.0 for _ in group) for group in p.poly.coefficients
                ),
                term_counts=p.poly.term_counts,
            )
            pieces.append(Piece(poly, p.r_max))
        return GeneratedFunction(gen.name, gen.family_name, pieces, {})

    def test_runtime_failure_cap_raises(self, tiny_generated, oracle):
        pipe, gen = tiny_generated("exp2")
        broken = self._zeroed(gen)
        constraints, _ = collect_constraints(pipe)
        with pytest.raises(GenerationError, match=r"exceed the special-case budget"):
            _absorb_runtime_failures(pipe, broken, constraints, budget=4)

    def test_runtime_failures_within_budget_become_specials(
        self, tiny_generated, oracle
    ):
        # The clean artifact has zero residual failures, so any budget
        # absorbs them and the specials dict is unchanged.
        pipe, gen = tiny_generated("log2")
        constraints, _ = collect_constraints(pipe)
        before = dict(gen.specials)
        _absorb_runtime_failures(pipe, gen, constraints, budget=0)
        assert gen.specials == before


class TestSplitByR:
    def make_constraints(self, pipe):
        cons, _ = collect_constraints(pipe)
        return cons

    def test_single_split_identity(self, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        cons = self.make_constraints(pipe)
        buckets, bounds = _split_by_r(cons, 1)
        assert bounds == []
        assert len(buckets[0]) == len(cons)

    def test_two_way_split_partitions(self, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        cons = self.make_constraints(pipe)
        buckets, bounds = _split_by_r(cons, 2)
        assert len(bounds) == 1
        assert sum(len(b) for b in buckets) == len(cons)
        # bisect_right semantics: the bound itself belongs to the upper
        # bucket, both here and in GeneratedFunction.piece_for.
        assert all(float(c.x) < bounds[0] for c in buckets[0])
        assert all(float(c.x) >= bounds[0] for c in buckets[1])


class TestCollectConstraints:
    def test_merging_reduces_rows(self, oracle):
        pipe = make_pipeline("cosh", TINY_CONFIG, oracle)
        cons, specials = collect_constraints(pipe)
        # cosh is even: +x and -x merge, so there must be multi-tag rows.
        assert any(len(c.tags) > 1 for c in cons)

    def test_intervals_nonempty(self, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        cons, _ = collect_constraints(pipe)
        for c in cons:
            if c.lo is not None and c.hi is not None:
                assert c.lo <= c.hi

    def test_levels_have_wider_intervals_when_smaller(self, oracle):
        # A value present at both levels: the smaller format's interval
        # must contain the larger format's (coarser grid, more freedom).
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        cons, _ = collect_constraints(pipe)
        by_x = {}
        for c in cons:
            if c.lo is None or c.hi is None:
                continue
            by_x.setdefault(c.x, {})[c.level] = c
        shared = 0
        for x, per_level in by_x.items():
            if 0 in per_level and 1 in per_level:
                small, big = per_level[0], per_level[1]
                if small.tags[0][1] == big.tags[0][1]:  # same input value
                    shared += 1
                    assert small.hi - small.lo >= (big.hi - big.lo) / 2
        assert shared > 10
