"""Progressive polynomial containers and Horner evaluation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomial import (
    PolyShape,
    ProgressivePolynomial,
    coefficient_vector_layout,
    eval_double_horner,
    eval_exact,
)

F = Fraction


class TestPolyShape:
    def test_dense(self):
        s = PolyShape.dense(4)
        assert s.exponents == (0, 1, 2, 3)
        assert s.terms == 4
        assert s.degree() == 3
        assert s.degree(2) == 1

    def test_odd_even(self):
        assert PolyShape.odd(3).exponents == (1, 3, 5)
        assert PolyShape.even(3).exponents == (0, 2, 4)
        assert PolyShape.odd(3).degree() == 5

    def test_truncate(self):
        assert PolyShape.dense(5).truncate(2).exponents == (0, 1)

    def test_degree_zero_terms(self):
        assert PolyShape.dense(3).degree(0) == 0


class TestEvaluation:
    def test_exact_dense(self):
        s = PolyShape.dense(3)
        coeffs = [F(1), F(2), F(3)]
        assert eval_exact(s, coeffs, F(2)) == 1 + 4 + 12

    def test_exact_truncated(self):
        s = PolyShape.dense(3)
        coeffs = [F(1), F(2), F(3)]
        assert eval_exact(s, coeffs, F(2), nterms=2) == 5

    def test_exact_odd(self):
        s = PolyShape.odd(2)
        assert eval_exact(s, [F(1), F(1)], F(2)) == 2 + 8

    def test_double_matches_exact_when_representable(self):
        s = PolyShape.dense(3)
        coeffs = [1.5, 0.25, 2.0]
        x = 0.5
        want = 1.5 + 0.25 * 0.5 + 2.0 * 0.25
        assert eval_double_horner(s, coeffs, x) == want

    @settings(max_examples=100)
    @given(
        st.lists(st.floats(-4, 4), min_size=1, max_size=7),
        st.floats(-1, 1),
        st.sampled_from(["dense", "odd", "even"]),
    )
    def test_double_close_to_exact(self, coeffs, x, kind):
        shape = getattr(PolyShape, kind)(len(coeffs))
        got = eval_double_horner(shape, coeffs, x)
        want = float(
            eval_exact(shape, [F(c) for c in coeffs], F(x) if x else F(0))
        )
        assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_zero_terms(self):
        assert eval_double_horner(PolyShape.dense(3), [1.0, 2.0, 3.0], 5.0, 0) == 0.0

    def test_irregular_shape_fallback(self):
        s = PolyShape((0, 3))
        assert eval_double_horner(s, [1.0, 2.0], 2.0) == 1.0 + 2.0 * 8.0


class TestProgressivePolynomial:
    def make(self):
        return ProgressivePolynomial(
            shapes=(PolyShape.dense(4),),
            coefficients=((F(1), F(1, 2), F(1, 8), F(1, 64)),),
            term_counts=((2,), (3,), (4,)),
        )

    def test_basic_properties(self):
        p = self.make()
        assert p.num_polynomials == 1
        assert p.num_levels == 3
        assert p.max_degree() == 3
        assert p.max_degree(0) == 1
        assert p.storage_bytes() == 32

    def test_eval_levels_progressive(self):
        p = self.make()
        x = 0.5
        v0 = p.eval_level(x, 0)
        v2 = p.eval_level(x, 2)
        assert v0 == 1 + 0.25
        assert v2 == 1 + 0.25 + 0.125 / 4 + 0.125 / 64

    def test_exact_level(self):
        p = self.make()
        assert p.eval_exact_level(F(1, 2), 0) == F(5, 4)

    def test_double_coeffs_are_nearest(self):
        p = ProgressivePolynomial(
            shapes=(PolyShape.dense(1),),
            coefficients=((F(1, 3),),),
            term_counts=((1,),),
        )
        assert p.double_coefficients[0][0] == 1 / 3

    def test_two_polynomials(self):
        p = ProgressivePolynomial(
            shapes=(PolyShape.odd(2), PolyShape.even(2)),
            coefficients=((F(1), F(-1, 6)), (F(1), F(-1, 2))),
            term_counts=((1, 1), (2, 2)),
        )
        assert p.eval_level(0.5, 0, poly=0) == 0.5
        assert p.eval_level(0.5, 1, poly=1) == 1 - 0.125

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressivePolynomial(
                shapes=(PolyShape.dense(2),),
                coefficients=((F(1),), (F(2),)),
                term_counts=((1,),),
            )
        with pytest.raises(ValueError):
            ProgressivePolynomial(
                shapes=(PolyShape.dense(2),),
                coefficients=((F(1), F(2)),),
                term_counts=((1, 1),),
            )


def test_coefficient_vector_layout():
    layout = coefficient_vector_layout([PolyShape.dense(3), PolyShape.odd(2)])
    assert layout == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]
