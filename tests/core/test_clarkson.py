"""The randomized Clarkson solver on synthetic progressive systems."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.clarkson import default_sample_size, solve_constraints
from repro.core.constraints import ConstraintSystem, ReducedConstraint
from repro.core.polynomial import PolyShape, eval_exact

F = Fraction


def exp_like_system(n=4000, k=4, width=F(1, 10**5), seed=3, levels=None):
    """Interval constraints around exp(x) for small |x|, optionally with a
    progressive level structure."""
    rng = np.random.default_rng(seed)
    shape = PolyShape.dense(k)
    levels = levels or [(k,)]
    cons = []
    for _ in range(n):
        x = F(int(rng.integers(-(1 << 18), 1 << 18)), 1 << 25)
        mid = F(math.exp(float(x))).limit_denominator(10**14)
        level = int(rng.integers(0, len(levels)))
        # Wider intervals for lower levels, like coarser formats.
        w = width * (4 ** (len(levels) - 1 - level))
        cons.append(ReducedConstraint(x, level, mid - w, mid + w))
    return ConstraintSystem(cons, [shape], levels)


class TestSolveConstraints:
    def test_feasible_full_success(self):
        sys = exp_like_system()
        res = solve_constraints(sys, rng=np.random.default_rng(0))
        assert res.success
        assert res.feasible
        assert len(res.violations) == 0
        # The solution must satisfy every constraint exactly.
        assert len(sys.violations(res.coefficients)) == 0

    def test_progressive_levels(self):
        sys = exp_like_system(n=3000, k=4, levels=[(2,), (3,), (4,)], width=F(1, 5000))
        res = solve_constraints(sys, rng=np.random.default_rng(1))
        assert res.success
        # Truncated evaluations stay within their level's intervals.
        shape = PolyShape.dense(4)
        for c, row in zip(sys.constraints, sys.rows):
            val = eval_exact(shape, res.coefficients, c.x, (2, 3, 4)[c.level])
            assert c.lo <= val <= c.hi

    def test_infeasible_detected(self):
        shape = PolyShape.dense(1)
        cons = [
            ReducedConstraint(F(0), 0, F(0), F(1)),
            ReducedConstraint(F(0), 0, F(2), F(3)),
        ]
        sys = ConstraintSystem(cons, [shape], ((1,),))
        res = solve_constraints(sys, rng=np.random.default_rng(0))
        assert not res.feasible

    def test_near_feasible_returns_best(self):
        # A handful of poisoned constraints: solver should end with few
        # violations (the "special case inputs" path).
        sys_cons = []
        rng = np.random.default_rng(5)
        for _ in range(2000):
            x = F(int(rng.integers(-(1 << 18), 1 << 18)), 1 << 25)
            mid = F(math.exp(float(x))).limit_denominator(10**14)
            w = F(1, 10**4)
            sys_cons.append(ReducedConstraint(x, 0, mid - w, mid + w))
        # Poison: one constraint demanding a wildly wrong value.
        sys_cons.append(ReducedConstraint(F(1, 100), 0, F(10), F(11)))
        sys = ConstraintSystem(sys_cons, [PolyShape.dense(4)], ((4,),))
        res = solve_constraints(sys, max_iterations=12, rng=np.random.default_rng(0))
        assert res.coefficients is not None
        assert 1 <= len(res.violations) <= 4

    def test_iteration_bound_in_expectation(self):
        # The paper: 6 k log n expected iterations for full-rank systems.
        sys = exp_like_system(n=5000, k=3)
        bound = 6 * 3 * math.log(5000)
        iters = []
        for seed in range(5):
            res = solve_constraints(sys, rng=np.random.default_rng(seed))
            assert res.success
            iters.append(res.stats.iterations)
        assert np.mean(iters) <= bound

    def test_unweighted_ablation_still_solves_easy(self):
        sys = exp_like_system(n=2000, k=3, width=F(1, 1000))
        res = solve_constraints(
            sys, weighted=False, rng=np.random.default_rng(2)
        )
        assert res.success

    def test_empty_system(self):
        sys = ConstraintSystem([], [PolyShape.dense(2)], ((2,),))
        res = solve_constraints(sys)
        assert res.success
        assert res.coefficients == [F(0), F(0)]

    def test_stats_recorded(self):
        sys = exp_like_system(n=1500, k=3)
        res = solve_constraints(sys, rng=np.random.default_rng(0))
        st = res.stats
        assert st.lp_solves == st.iterations
        assert len(st.violation_history) == st.iterations
        assert st.lucky_iterations <= st.iterations

    def test_incumbent_tiebreak_prefers_margin(self):
        from repro.core.clarkson import improves_best

        # First candidate always wins.
        assert improves_best(3, F(1, 10), None, F(0))
        # Fewer violations beat more, margin notwithstanding.
        assert improves_best(2, F(1, 100), 3, F(1))
        assert not improves_best(4, F(1), 3, F(1, 100))
        # On a violation-count tie, the larger exact margin wins: it is
        # the more robust near-feasible solution to keep.
        assert improves_best(3, F(1, 2), 3, F(1, 4))
        assert not improves_best(3, F(1, 4), 3, F(1, 2))
        assert not improves_best(3, F(1, 4), 3, F(1, 4))  # strict

    def test_sample_size_default(self):
        assert default_sample_size(4) == 96
        assert default_sample_size(7) == 294

    def test_custom_sample_size(self):
        sys = exp_like_system(n=1500, k=3)
        res = solve_constraints(
            sys, sample_size=30, rng=np.random.default_rng(0), max_iterations=200
        )
        assert res.success


class TestTwoPolynomialSystems:
    def test_sinh_cosh_like(self):
        # Constraints a*P1(x) + b*P2(x) in [lo, hi] with P1 odd, P2 even,
        # mimicking the sinh range reduction.
        rng = np.random.default_rng(9)
        shapes = [PolyShape.odd(2), PolyShape.even(2)]
        cons = []
        for _ in range(1500):
            x = F(int(rng.integers(-(1 << 16), 1 << 16)), 1 << 22)
            a = F(int(rng.integers(1, 8)))
            b = F(int(rng.integers(1, 8)))
            true = a * (x + x**3 / 6) + b * (1 + x**2 / 2)
            w = F(1, 10**7)
            cons.append(
                ReducedConstraint(x, 0, true - w, true + w, mults=(a, b))
            )
        sys = ConstraintSystem(cons, shapes, ((2, 2),))
        res = solve_constraints(sys, rng=np.random.default_rng(0))
        assert res.success
        # Coefficients should be near the sinh/cosh Taylor coefficients.
        c = [float(v) for v in res.coefficients]
        assert c[0] == pytest.approx(1.0, abs=1e-4)
        assert c[1] == pytest.approx(1 / 6, abs=1e-2)
        assert c[2] == pytest.approx(1.0, abs=1e-4)
        assert c[3] == pytest.approx(1 / 2, abs=1e-2)
