"""Shared fixtures: one oracle and lazily generated tiny-family functions."""

import pytest

from repro.core import generate_function
from repro.funcs import TINY_CONFIG, make_pipeline
from repro.mp import Oracle


@pytest.fixture(scope="session")
def oracle():
    return Oracle()


@pytest.fixture(scope="session")
def tiny_generated(oracle):
    """Factory returning (pipeline, GeneratedFunction) for the tiny family,
    generating each function at most once per test session."""
    cache = {}

    def get(name: str):
        if name not in cache:
            pipe = make_pipeline(name, TINY_CONFIG, oracle)
            cache[name] = (pipe, generate_function(pipe))
        return cache[name]

    return get
