"""Oracle edge cases: precision seeding, escalation, failure modes."""

from fractions import Fraction

import pytest

from repro.fp import FLOAT16, FLOAT32, RoundingMode
from repro.mp import Oracle, OraclePrecisionError
from repro.mp.oracle import _log2_magnitude_estimate


class TestInitialPrecision:
    def test_tiny_results_get_more_bits(self):
        oracle = Oracle()
        # exp2(-100) ~ 2^-100 needs ~100 extra absolute bits.
        small = oracle.initial_precision("exp2", Fraction(-100), FLOAT16)
        normal = oracle.initial_precision("exp2", Fraction(1), FLOAT16)
        assert small >= normal + 80

    def test_log_near_one(self):
        oracle = Oracle()
        x = Fraction(1) + Fraction(1, 1 << 20)
        p = oracle.initial_precision("ln", x, FLOAT16)
        assert p >= 64

    def test_estimates_do_not_raise_on_extremes(self):
        for fn in ("exp", "exp2", "exp10", "ln", "log2", "log10",
                   "sinh", "cosh", "sinpi", "cospi"):
            for x in (Fraction(10) ** 301, -Fraction(10) ** 301, Fraction(1),
                      Fraction(1, 10**30)):
                if fn in ("ln", "log2", "log10") and x <= 0:
                    continue
                est = _log2_magnitude_estimate(fn, x)
                assert est == est  # not NaN


class TestPrecisionEscalation:
    @staticmethod
    def _hard_input():
        """A dyadic x whose log2 sits ~2^-85 from a float32 RNE boundary."""
        oracle = Oracle()
        tie = Fraction(2) + Fraction(1, 1 << 23)  # midpoint exponent
        t = oracle.tight_value("exp2", tie, 120)
        num = round(t * (1 << 110))
        return Fraction(num, 1 << 110)

    def test_cap_raises(self):
        x = self._hard_input()
        oracle = Oracle(max_prec=96)
        with pytest.raises(OraclePrecisionError):
            oracle.correctly_rounded("log2", x, FLOAT32, RoundingMode.RNE)

    def test_default_cap_sufficient(self):
        x = self._hard_input()
        oracle = Oracle()
        v = oracle.correctly_rounded("log2", x, FLOAT32, RoundingMode.RNE)
        assert abs(v.value - 2) <= Fraction(1, 1 << 22)

    def test_correctly_rounded_all_consistent(self):
        oracle = Oracle()
        from repro.fp import IEEE_MODES

        x = Fraction(7, 8)
        both = oracle.correctly_rounded_all("exp", x, FLOAT16, IEEE_MODES)
        for mode in IEEE_MODES:
            single = oracle.correctly_rounded("exp", x, FLOAT16, mode)
            assert both[mode].bits == single.bits

    def test_tight_value_cap(self):
        oracle = Oracle(max_prec=64)
        with pytest.raises(OraclePrecisionError):
            oracle.tight_value("exp", Fraction(1), 200)


class TestRoundedCache:
    def test_cache_disabled(self):
        oracle = Oracle(cache_rounded=False)
        a = oracle.correctly_rounded("exp", Fraction(1), FLOAT16, RoundingMode.RNE)
        b = oracle.correctly_rounded("exp", Fraction(1), FLOAT16, RoundingMode.RNE)
        assert a.bits == b.bits
        assert a is not b
