"""The Ziv oracle: correctly rounded results for every function/format/mode."""

from fractions import Fraction

import mpmath
import pytest
from hypothesis import given, settings, strategies as st

from repro.fp import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    IEEE_MODES,
    RoundingMode,
    round_real,
)
from repro.mp import FUNCTION_NAMES, Oracle, exact_value

from .conftest import reference
from .test_functions import MPMATH_FN


@pytest.fixture(scope="module")
def oracle():
    return Oracle()


class TestExactValues:
    def test_exp_family(self):
        assert exact_value("exp", Fraction(0)) == 1
        assert exact_value("exp", Fraction(1)) is None
        assert exact_value("exp2", Fraction(10)) == 1024
        assert exact_value("exp2", Fraction(-3)) == Fraction(1, 8)
        assert exact_value("exp2", Fraction(1, 2)) is None
        assert exact_value("exp10", Fraction(2)) == 100
        assert exact_value("exp10", Fraction(-1)) == Fraction(1, 10)

    def test_log_family(self):
        assert exact_value("ln", Fraction(1)) == 0
        assert exact_value("ln", Fraction(2)) is None
        assert exact_value("log2", Fraction(8)) == 3
        assert exact_value("log2", Fraction(1, 16)) == -4
        assert exact_value("log2", Fraction(3)) is None
        assert exact_value("log10", Fraction(1000)) == 3
        assert exact_value("log10", Fraction(1)) == 0
        assert exact_value("log10", Fraction(999)) is None
        assert exact_value("log10", Fraction(1, 2)) is None

    def test_log10_huge_powers_exact_integer_check(self):
        # The power-of-ten test is pure integer arithmetic: no float
        # round-trip, so it stays exact far beyond binary64's range and
        # rejects near-misses of astronomically large powers.
        assert exact_value("log10", Fraction(10) ** 400) == 400
        assert exact_value("log10", Fraction(10) ** 5000) == 5000
        assert exact_value("log10", Fraction(10**400 + 1)) is None
        assert exact_value("log10", Fraction(10**400 - 1)) is None
        # Non-integer rationals (including exact tenths) stay inexact.
        assert exact_value("log10", Fraction(1, 10)) is None

    def test_hyperbolic(self):
        assert exact_value("sinh", Fraction(0)) == 0
        assert exact_value("cosh", Fraction(0)) == 1
        assert exact_value("sinh", Fraction(1)) is None

    def test_trig_pi(self):
        assert exact_value("sinpi", Fraction(0)) == 0
        assert exact_value("sinpi", Fraction(1, 2)) == 1
        assert exact_value("sinpi", Fraction(1)) == 0
        assert exact_value("sinpi", Fraction(3, 2)) == -1
        assert exact_value("sinpi", Fraction(-1, 2)) == -1
        assert exact_value("sinpi", Fraction(1, 4)) is None
        assert exact_value("cospi", Fraction(0)) == 1
        assert exact_value("cospi", Fraction(1, 2)) == 0
        assert exact_value("cospi", Fraction(1)) == -1
        assert exact_value("cospi", Fraction(-3, 2)) == 0

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            exact_value("tan", Fraction(1))


def dyadics(lo: int, hi: int, scale_bits: int = 10):
    return st.integers(lo << scale_bits, hi << scale_bits).map(
        lambda n: Fraction(n, 1 << scale_bits)
    )


DOMAINS = {
    "exp": dyadics(-80, 80),
    "exp2": dyadics(-120, 120),
    "exp10": dyadics(-35, 35),
    "ln": dyadics(1, 60000).filter(lambda x: x > 0),
    "log2": dyadics(1, 60000).filter(lambda x: x > 0),
    "log10": dyadics(1, 60000).filter(lambda x: x > 0),
    "sinh": dyadics(-11, 11),
    "cosh": dyadics(-11, 11),
    "sinpi": dyadics(-16, 16),
    "cospi": dyadics(-16, 16),
}


class TestCorrectlyRounded:
    _shared_oracle = Oracle()

    @settings(max_examples=250, deadline=None)
    @given(data=st.data())
    def test_matches_mpmath_half(self, data):
        oracle = self._shared_oracle
        fn = data.draw(st.sampled_from(FUNCTION_NAMES))
        x = data.draw(DOMAINS[fn])
        mode = data.draw(st.sampled_from(list(IEEE_MODES) + [RoundingMode.RTO]))
        got = oracle.correctly_rounded(fn, x, FLOAT16, mode)
        if exact_value(fn, x) is not None:
            want = round_real(exact_value(fn, x), FLOAT16, mode)
        else:
            want = round_real(reference(MPMATH_FN[fn], x, 200), FLOAT16, mode)
        assert got.bits == want.bits, f"{fn}({x}) {mode}"

    def test_bfloat16_and_float32(self, oracle):
        for fmt in (BFLOAT16, FLOAT32):
            x = Fraction(3, 4)
            got = oracle.correctly_rounded("exp", x, fmt, RoundingMode.RNE)
            want = round_real(reference(mpmath.exp, x, 200), fmt, RoundingMode.RNE)
            assert got.bits == want.bits

    def test_hard_cases_near_exact(self, oracle):
        """Inputs whose results sit barely off a representable value force
        several Ziv refinements."""
        for x in (
            Fraction(1) + Fraction(1, 1 << 14),  # ln near 0
            Fraction(4) + Fraction(1, 1 << 12),  # log2 near 2
        ):
            got = oracle.correctly_rounded("log2", x, FLOAT16, RoundingMode.RNE)
            want = round_real(
                reference(MPMATH_FN["log2"], x, 300), FLOAT16, RoundingMode.RNE
            )
            assert got.bits == want.bits

    def test_subnormal_results(self, oracle):
        # exp2(-20.5) is subnormal in float16 (min normal 2^-14).
        x = Fraction(-41, 2)
        got = oracle.correctly_rounded("exp2", x, FLOAT16, RoundingMode.RNE)
        want = round_real(reference(MPMATH_FN["exp2"], x, 200), FLOAT16, RoundingMode.RNE)
        assert got.bits == want.bits
        assert got.kind.value == "subnormal"

    def test_overflowing_results(self, oracle):
        got = oracle.correctly_rounded("exp", Fraction(12), FLOAT16, RoundingMode.RNE)
        assert got.is_infinity
        got = oracle.correctly_rounded("exp", Fraction(12), FLOAT16, RoundingMode.RTZ)
        assert got.value == FLOAT16.max_value

    def test_underflow_round_to_odd(self, oracle):
        # Tiny positive result must become min_subnormal, not zero, under RTO.
        got = oracle.correctly_rounded("exp2", Fraction(-60), FLOAT16, RoundingMode.RTO)
        assert got.value == FLOAT16.min_subnormal

    def test_exact_cases_all_modes(self, oracle):
        for mode in IEEE_MODES:
            got = oracle.correctly_rounded("log2", Fraction(1024), FLOAT16, mode)
            assert got.value == 10

    def test_cache(self):
        oracle = Oracle()
        a = oracle.correctly_rounded("exp", Fraction(1), FLOAT16, RoundingMode.RNE)
        b = oracle.correctly_rounded("exp", Fraction(1), FLOAT16, RoundingMode.RNE)
        assert a is b
        oracle.clear_cache()
        c = oracle.correctly_rounded("exp", Fraction(1), FLOAT16, RoundingMode.RNE)
        assert c.bits == a.bits


class TestTightValue:
    def test_tight_value_accuracy(self, oracle):
        x = Fraction(5, 3)
        got = oracle.tight_value("exp", x, 80)
        want = reference(mpmath.exp, x, 200)
        assert abs(got - want) <= abs(want) / (1 << 78)

    def test_tight_value_exact(self, oracle):
        assert oracle.tight_value("log2", Fraction(32), 100) == 5
