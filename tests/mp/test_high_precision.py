"""High-precision stress: enclosures stay sound and tight at 512+ bits."""

from fractions import Fraction

import mpmath
import pytest

from repro.mp import FI, Oracle
from repro.mp import consts, functions
from repro.mp.series import atanh_series, exp_series

from .conftest import mpf_to_fraction


def reference_hp(fn, x: Fraction, prec: int) -> Fraction:
    with mpmath.workprec(prec + 200):
        return mpf_to_fraction(fn(mpmath.mpf(x.numerator) / x.denominator))


HIGH_PRECS = (256, 512, 1024)


class TestConstantsHighPrecision:
    @pytest.mark.parametrize("prec", HIGH_PRECS)
    def test_pi(self, prec):
        enc = consts.pi(prec)
        true = reference_hp(lambda v: mpmath.pi + 0 * v, Fraction(1), prec)
        assert enc.contains_fraction(true)
        assert enc.width_ulps <= 32

    @pytest.mark.parametrize("prec", HIGH_PRECS)
    def test_ln2(self, prec):
        enc = consts.ln2(prec)
        true = reference_hp(mpmath.ln, Fraction(2), prec)
        assert enc.contains_fraction(true)
        assert enc.width_ulps <= 32


class TestFunctionsHighPrecision:
    @pytest.mark.parametrize("prec", (256, 512))
    def test_exp(self, prec):
        x = Fraction(7, 3)
        enc = functions.exp(x, prec)
        true = reference_hp(mpmath.exp, x, prec)
        assert enc.lo_fraction <= true <= enc.hi_fraction
        # Relative width ~prec bits.
        assert enc.width_ulps <= enc.mag_hi() >> (prec - 40)

    @pytest.mark.parametrize("prec", (256, 512))
    def test_log2(self, prec):
        x = Fraction(1234567, 1024)
        enc = functions.log2(x, prec)
        true = reference_hp(lambda v: mpmath.log(v, 2), x, prec)
        assert enc.lo_fraction <= true <= enc.hi_fraction

    def test_sinpi_512(self):
        x = Fraction(12345, 65536)
        enc = functions.sinpi(x, 512)
        true = reference_hp(lambda v: mpmath.sin(mpmath.pi * v), x, 512)
        assert enc.lo_fraction <= true <= enc.hi_fraction


class TestSeriesConvergenceHighPrecision:
    def test_exp_series_512(self):
        enc = exp_series(FI.from_fraction(Fraction(1, 2), 512))
        true = reference_hp(mpmath.exp, Fraction(1, 2), 512)
        assert enc.contains_fraction(true)
        assert enc.width_ulps <= 1 << 12

    def test_atanh_series_512(self):
        enc = atanh_series(FI.from_fraction(Fraction(1, 5), 512))
        true = reference_hp(mpmath.atanh, Fraction(1, 5), 512)
        assert enc.contains_fraction(true)


class TestZivEscalationDepth:
    def test_hard_log_needs_several_doublings(self):
        """An input engineered so log2 is ~2^-200 from a rounding boundary
        forces the Ziv loop through multiple precisions and still lands
        correctly."""
        from repro.fp import FLOAT32, RoundingMode, round_real

        oracle = Oracle()
        tie = Fraction(3) + Fraction(3, 1 << 23)
        t = oracle.tight_value("exp2", tie, 260)
        x = Fraction(round(t * (1 << 250)), 1 << 250)
        got = oracle.correctly_rounded("log2", x, FLOAT32, RoundingMode.RNE)
        want = round_real(
            reference_hp(lambda v: mpmath.log(v, 2), x, 400),
            FLOAT32,
            RoundingMode.RNE,
        )
        assert got.bits == want.bits
