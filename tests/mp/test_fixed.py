"""Tests for directed fixed-point interval arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.mp.fixed import FI, ceil_div, ceil_shift, floor_div, floor_shift

PREC = 64


def fi(x, prec=PREC):
    return FI.from_fraction(Fraction(x), prec)


rationals = st.fractions(
    min_value=Fraction(-1000), max_value=Fraction(1000), max_denominator=10**6
)
nonzero_rationals = rationals.filter(lambda x: abs(x) > Fraction(1, 100))


class TestShifts:
    def test_floor_shift(self):
        assert floor_shift(7, 1) == 3
        assert floor_shift(-7, 1) == -4
        assert floor_shift(7, -1) == 14

    def test_ceil_shift(self):
        assert ceil_shift(7, 1) == 4
        assert ceil_shift(-7, 1) == -3
        assert ceil_shift(6, 1) == 3

    def test_divs(self):
        assert floor_div(7, 2) == 3
        assert ceil_div(7, 2) == 4
        assert floor_div(-7, 2) == -4
        assert ceil_div(-7, 2) == -3
        assert floor_div(7, -2) == -4
        assert ceil_div(7, -2) == -3

    @given(st.integers(-10**9, 10**9), st.integers(0, 60))
    def test_shift_bounds(self, x, s):
        lo, hi = floor_shift(x, s), ceil_shift(x, s)
        assert lo * (1 << s) <= x <= hi * (1 << s)
        assert hi - lo <= 1


class TestConstruction:
    def test_exact_dyadic(self):
        x = FI.exact_dyadic(Fraction(3, 8), 16)
        assert x.lo == x.hi == 3 * (1 << 13)

    def test_exact_dyadic_rejects(self):
        with pytest.raises(ValueError):
            FI.exact_dyadic(Fraction(1, 3), 16)

    def test_from_fraction_encloses(self):
        x = fi(Fraction(1, 3))
        assert x.lo_fraction <= Fraction(1, 3) <= x.hi_fraction
        assert x.width_ulps == 1

    def test_from_int(self):
        x = FI.from_int(-5, 10)
        assert x.lo_fraction == -5

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            FI(1, 0, 8)


class TestArithmeticEnclosure:
    """Soundness: op(enclosure(a), enclosure(b)) contains op(a, b)."""

    @given(rationals, rationals)
    def test_add(self, a, b):
        assert (fi(a) + fi(b)).contains_fraction(a + b)

    @given(rationals, rationals)
    def test_sub(self, a, b):
        assert (fi(a) - fi(b)).contains_fraction(a - b)

    @given(rationals, rationals)
    def test_mul(self, a, b):
        assert (fi(a) * fi(b)).contains_fraction(a * b)

    @given(rationals)
    def test_square(self, a):
        sq = fi(a).square()
        assert sq.contains_fraction(a * a)
        assert sq.lo >= 0

    @given(rationals, nonzero_rationals)
    def test_div(self, a, b):
        assert (fi(a) / fi(b)).contains_fraction(a / b)

    @given(nonzero_rationals)
    def test_inv(self, a):
        assert fi(a).inv().contains_fraction(1 / a)

    @given(rationals, st.integers(-1000, 1000))
    def test_mul_int(self, a, n):
        assert fi(a).mul_int(n).contains_fraction(a * n)

    @given(rationals, st.integers(1, 1000))
    def test_div_int(self, a, n):
        assert fi(a).div_int(n).contains_fraction(Fraction(a, n))
        assert fi(a).div_int(-n).contains_fraction(Fraction(a, -n))

    @given(rationals, st.integers(-40, 40))
    def test_scale2(self, a, k):
        assert fi(a).scale2(k).contains_fraction(a * Fraction(2) ** k)

    @given(rationals)
    def test_neg(self, a):
        assert (-fi(a)).contains_fraction(-a)

    def test_div_by_zero_interval(self):
        with pytest.raises(ZeroDivisionError):
            fi(1) / FI(-1, 1, PREC)
        with pytest.raises(ZeroDivisionError):
            fi(1).div_int(0)

    def test_prec_mismatch(self):
        with pytest.raises(ValueError):
            fi(1, 32) + fi(1, 64)


class TestTightness:
    """Operations should not blow enclosures up beyond a few ulps."""

    @given(rationals, rationals)
    def test_mul_width(self, a, b):
        w = (fi(a) * fi(b)).width_ulps
        # Inputs are 1-ulp wide; the product is a few thousand ulps at most
        # for |a|,|b| <= 1000.
        assert w <= 4 * 1024 + 8

    @given(nonzero_rationals)
    def test_inv_width_small(self, a):
        w = fi(a).inv().width_ulps
        assert w <= 4 * 10**4 + 8  # 1/|a| <= 100 -> derivative <= 10^4


class TestHelpers:
    def test_mid_width(self):
        x = FI(10, 14, 4)
        assert x.mid_fraction == Fraction(12, 16)
        assert x.width_ulps == 4

    def test_widen(self):
        x = FI(0, 0, 4).widen_ulps(3)
        assert (x.lo, x.hi) == (-3, 3)

    def test_hull(self):
        h = FI.hull([FI(0, 1, 4), FI(-5, -2, 4), FI(3, 7, 4)])
        assert (h.lo, h.hi) == (-5, 7)

    def test_signs(self):
        assert FI(1, 2, 4).is_positive()
        assert FI(-2, -1, 4).is_negative()
        assert FI(-1, 1, 4).contains_zero()

    def test_mag_hi(self):
        assert FI(-7, 3, 4).mag_hi() == 7
