"""Full-range function enclosures vs mpmath references."""

from fractions import Fraction

import mpmath
import pytest
from hypothesis import given, settings, strategies as st

from repro.mp import functions

from .conftest import reference

PREC = 96

MPMATH_FN = {
    "exp": mpmath.exp,
    "exp2": lambda v: mpmath.power(2, v),
    "exp10": lambda v: mpmath.power(10, v),
    "ln": mpmath.ln,
    "log2": lambda v: mpmath.log(v, 2),
    "log10": mpmath.log10,
    "sinh": mpmath.sinh,
    "cosh": mpmath.cosh,
    "sinpi": lambda v: mpmath.sin(mpmath.pi * v),
    "cospi": lambda v: mpmath.cos(mpmath.pi * v),
}


def check(name: str, x: Fraction, prec: int = PREC):
    enc = functions.FUNCTIONS[name](x, prec)
    true = reference(MPMATH_FN[name], x, prec)
    assert enc.lo_fraction <= true <= enc.hi_fraction, (
        f"{name}({x}): [{float(enc.lo_fraction)}, {float(enc.hi_fraction)}] "
        f"misses {float(true)}"
    )
    return enc


# Dyadic inputs, like actual FP values.
def dyadics(lo: int, hi: int, scale_bits: int = 20):
    return st.integers(lo << scale_bits, hi << scale_bits).map(
        lambda n: Fraction(n, 1 << scale_bits)
    )


class TestExpFamily:
    @settings(max_examples=50)
    @given(dyadics(-30, 30))
    def test_exp(self, x):
        check("exp", x)

    @settings(max_examples=50)
    @given(dyadics(-40, 40))
    def test_exp2(self, x):
        check("exp2", x)

    @settings(max_examples=50)
    @given(dyadics(-12, 12))
    def test_exp10(self, x):
        check("exp10", x)

    def test_exp_large(self):
        check("exp", Fraction(88))
        check("exp", Fraction(-87))

    def test_exp2_subnormal_range(self):
        enc = check("exp2", Fraction(-140), prec=220)
        assert enc.is_positive()

    def test_exp2_integer_exact(self):
        enc = functions.exp2(Fraction(10), PREC)
        assert enc.contains_fraction(Fraction(1024))
        assert enc.width_ulps <= 1 << 12  # scaled by 2^10


class TestLogFamily:
    @settings(max_examples=50)
    @given(dyadics(1, 1 << 16).filter(lambda x: x > 0))
    def test_ln(self, x):
        check("ln", x)

    @settings(max_examples=50)
    @given(dyadics(1, 1 << 16).filter(lambda x: x > 0))
    def test_log2(self, x):
        check("log2", x)

    @settings(max_examples=50)
    @given(dyadics(1, 1 << 16).filter(lambda x: x > 0))
    def test_log10(self, x):
        check("log10", x)

    def test_small_positive(self):
        for name in ("ln", "log2", "log10"):
            check(name, Fraction(1, 1 << 30))
            check(name, Fraction(3, 1 << 24))

    def test_near_one(self):
        for name in ("ln", "log2", "log10"):
            check(name, Fraction(1) + Fraction(1, 1 << 20))
            check(name, Fraction(1) - Fraction(1, 1 << 20))

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            functions.ln(Fraction(0), PREC)
        with pytest.raises(ValueError):
            functions.log2(Fraction(-1), PREC)


class TestHyperbolic:
    @settings(max_examples=50)
    @given(dyadics(-20, 20))
    def test_sinh(self, x):
        check("sinh", x)

    @settings(max_examples=50)
    @given(dyadics(-20, 20))
    def test_cosh(self, x):
        check("cosh", x)

    def test_sinh_tiny_no_cancellation(self):
        x = Fraction(1, 1 << 24)
        enc = check("sinh", x)
        # Enclosure must be tight in *relative* terms despite the tiny value.
        assert enc.width_ulps <= 8

    def test_sinh_odd(self):
        # Enclosures need not be bit-identical under mirroring (the exp
        # reduction rounds differently), but they must overlap.
        x = Fraction(5, 4)
        a = functions.sinh(x, PREC)
        b = functions.sinh(-x, PREC)
        assert a.lo <= -b.lo and -b.hi <= a.hi


class TestTrigPi:
    @settings(max_examples=60)
    @given(dyadics(-8, 8))
    def test_sinpi(self, x):
        check("sinpi", x)

    @settings(max_examples=60)
    @given(dyadics(-8, 8))
    def test_cospi(self, x):
        check("cospi", x)

    def test_periodicity_large_arg(self):
        # 2^20 + 1/4: sinpi = sin(pi/4) exactly by periodicity.
        x = Fraction((1 << 20) * 4 + 1, 4)
        enc = check("sinpi", x)
        root_half = reference(lambda v: mpmath.sqrt(v), Fraction(1, 2), PREC)
        assert abs(enc.mid_fraction - root_half) < Fraction(1, 1 << 80)

    def test_quadrants(self):
        assert functions.sinpi(Fraction(1, 4), PREC).is_positive()
        assert functions.sinpi(Fraction(3, 4), PREC).is_positive()
        assert functions.sinpi(Fraction(5, 4), PREC).is_negative()
        assert functions.cospi(Fraction(1, 4), PREC).is_positive()
        assert functions.cospi(Fraction(3, 4), PREC).is_negative()
        assert functions.cospi(Fraction(7, 4), PREC).is_positive()

    def test_even_odd_symmetry(self):
        x = Fraction(3, 8)
        s_pos = functions.sinpi(x, PREC)
        s_neg = functions.sinpi(-x, PREC)
        assert s_pos.lo == -s_neg.hi
        c_pos = functions.cospi(x, PREC)
        c_neg = functions.cospi(-x, PREC)
        assert (c_pos.lo, c_pos.hi) == (c_neg.lo, c_neg.hi)


class TestPrecisionScaling:
    def test_width_halves_with_more_precision(self):
        x = Fraction(7, 5)
        for name in functions.FUNCTIONS:
            arg = x if name not in ("ln", "log2", "log10") else x + 1
            w1 = functions.FUNCTIONS[name](arg, 64)
            w2 = functions.FUNCTIONS[name](arg, 128)
            # Relative width must improve by roughly 2^64.
            rel1 = Fraction(w1.width_ulps + 1, 1 << 64)
            rel2 = Fraction(w2.width_ulps + 1, 1 << 128)
            assert rel2 < rel1 / (1 << 32), name
