"""Shared mpmath reference helpers for the mp test suite."""

from fractions import Fraction

import mpmath
from mpmath.libmp import to_rational


def mpf_to_fraction(v) -> Fraction:
    """Exact rational value of an mpmath mpf."""
    return Fraction(*to_rational(v._mpf_))


def reference(fn, x: Fraction, prec: int) -> Fraction:
    """fn(x) computed by mpmath at prec + 120 bits, as an exact rational
    (of mpmath's own rounded result, which is accurate to ~prec+118 bits)."""
    with mpmath.workprec(prec + 120):
        v = fn(mpmath.mpf(x.numerator) / x.denominator)
        return mpf_to_fraction(v)
