"""Series kernels: enclosures must contain high-precision reference values."""

from fractions import Fraction

import mpmath
import pytest
from hypothesis import given, settings, strategies as st

from repro.mp.fixed import FI
from repro.mp.series import (
    atan_series,
    atanh_series,
    cos_series,
    cosh_series,
    exp_series,
    sin_series,
    sinh_series,
)

from .conftest import reference

PREC = 96


def ref(fn, x: Fraction) -> Fraction:
    return reference(fn, x, PREC)


def check(kernel, mp_fn, x: Fraction, max_width=64):
    enc = kernel(FI.from_fraction(x, PREC))
    true = ref(mp_fn, x)
    assert enc.lo_fraction <= true <= enc.hi_fraction, f"x={x}"
    assert enc.width_ulps <= max_width, f"x={x} width={enc.width_ulps}"


small = st.fractions(
    min_value=Fraction(-3, 4), max_value=Fraction(3, 4), max_denominator=10**9
)
tiny = st.fractions(
    min_value=Fraction(-1, 3), max_value=Fraction(1, 3), max_denominator=10**9
)
unit = st.fractions(min_value=Fraction(-1), max_value=Fraction(1), max_denominator=10**9)
sincos_dom = st.fractions(
    min_value=Fraction(-17, 10), max_value=Fraction(17, 10), max_denominator=10**9
)
atan_dom = st.fractions(
    min_value=Fraction(-1, 4), max_value=Fraction(1, 4), max_denominator=10**9
)


class TestKernels:
    @settings(max_examples=60)
    @given(small)
    def test_exp(self, x):
        check(exp_series, mpmath.exp, x)

    @settings(max_examples=60)
    @given(tiny)
    def test_atanh(self, x):
        check(atanh_series, mpmath.atanh, x)

    @settings(max_examples=60)
    @given(sincos_dom)
    def test_sin(self, x):
        check(sin_series, mpmath.sin, x)

    @settings(max_examples=60)
    @given(sincos_dom)
    def test_cos(self, x):
        check(cos_series, mpmath.cos, x)

    @settings(max_examples=60)
    @given(unit)
    def test_sinh(self, x):
        check(sinh_series, mpmath.sinh, x)

    @settings(max_examples=60)
    @given(unit)
    def test_cosh(self, x):
        check(cosh_series, mpmath.cosh, x)

    @settings(max_examples=60)
    @given(atan_dom)
    def test_atan(self, x):
        check(atan_series, mpmath.atan, x)


class TestKnownValues:
    def test_exp_zero(self):
        enc = exp_series(FI.from_int(0, PREC))
        assert enc.contains_fraction(Fraction(1))
        assert enc.width_ulps <= 4

    def test_sin_zero(self):
        assert sin_series(FI.from_int(0, PREC)).contains_fraction(Fraction(0))

    def test_cos_zero(self):
        assert cos_series(FI.from_int(0, PREC)).contains_fraction(Fraction(1))

    def test_exp_half_digits(self):
        # e^(1/2) = 1.6487212707001281468...
        enc = exp_series(FI.from_fraction(Fraction(1, 2), PREC))
        known = Fraction(16487212707001281468, 10**19)
        assert abs(enc.mid_fraction - known) < Fraction(1, 10**18)


class TestDomainGuards:
    def test_exp_domain(self):
        with pytest.raises(ValueError):
            exp_series(FI.from_int(1, PREC))

    def test_atanh_domain(self):
        with pytest.raises(ValueError):
            atanh_series(FI.from_fraction(Fraction(1, 2), PREC))

    def test_sin_domain(self):
        with pytest.raises(ValueError):
            sin_series(FI.from_int(2, PREC))

    def test_sinh_domain(self):
        with pytest.raises(ValueError):
            sinh_series(FI.from_fraction(Fraction(3, 2), PREC))

    def test_atan_domain(self):
        with pytest.raises(ValueError):
            atan_series(FI.from_fraction(Fraction(1, 2), PREC))


class TestIntervalInputs:
    """Kernels must stay sound for genuinely wide interval inputs."""

    def test_exp_wide_input(self):
        x = FI(-(1 << 94), 1 << 94, PREC)  # [-1/4, 1/4]
        enc = exp_series(x)
        for frac in (Fraction(-1, 4), Fraction(0), Fraction(1, 4)):
            assert enc.contains_fraction(ref(mpmath.exp, frac) if frac else Fraction(1))

    def test_sin_wide_input(self):
        x = FI(0, 1 << 95, PREC)  # [0, 1/2]
        enc = sin_series(x)
        assert enc.contains_fraction(Fraction(0))
        assert enc.contains_fraction(ref(mpmath.sin, Fraction(1, 2)))
