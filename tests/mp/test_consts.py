"""Constant enclosures: containment of known digits and tightness."""

from fractions import Fraction

import mpmath

from repro.mp import consts



def known(fn_name: str, prec: int) -> Fraction:
    with mpmath.workprec(prec + 80):
        v = {
            "pi": mpmath.pi,
            "ln2": mpmath.ln(2),
            "ln10": mpmath.ln(10),
            "log2_10": mpmath.log(10, 2),
            "log2_e": 1 / mpmath.ln(2),
        }[fn_name]
        from .conftest import mpf_to_fraction

        return mpf_to_fraction(+v)


class TestConstants:
    def test_pi_contains_and_tight(self):
        for prec in (64, 128, 256, 512):
            enc = consts.pi(prec)
            assert enc.contains_fraction(known("pi", prec))
            assert enc.width_ulps <= 16

    def test_ln2(self):
        for prec in (64, 200):
            enc = consts.ln2(prec)
            assert enc.contains_fraction(known("ln2", prec))
            assert enc.width_ulps <= 16

    def test_ln10(self):
        enc = consts.ln10(128)
        assert enc.contains_fraction(known("ln10", 128))
        assert enc.width_ulps <= 16

    def test_log2_10(self):
        enc = consts.log2_10(128)
        assert enc.contains_fraction(known("log2_10", 128))
        assert enc.width_ulps <= 32

    def test_log2_e(self):
        enc = consts.log2_e(128)
        assert enc.contains_fraction(known("log2_e", 128))
        assert enc.width_ulps <= 32

    def test_pi_first_digits(self):
        enc = consts.pi(80)
        mid = float(enc.mid_fraction)
        assert abs(mid - 3.14159265358979323846) < 1e-15

    def test_cache_hit_is_same_object(self):
        a = consts.pi(96)
        b = consts.pi(96)
        assert a is b

    def test_clear_cache(self):
        a = consts.pi(96)
        consts.clear_cache()
        b = consts.pi(96)
        assert a is not b
        assert (a.lo, a.hi) == (b.lo, b.hi)
