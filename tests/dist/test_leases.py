"""Lease-manager invariants, unit tests + property tests.

The properties mirror the docstring contract of
:class:`repro.dist.leases.LeaseManager`:

* while a lease is live its unit is never granted to anyone else;
* an expired lease requeues its unit exactly once (or parks it);
* a unit is parked exactly when its attempts exhaust the budget, and a
  parked unit is never granted again;
* completions are idempotent (first wins), accepted from any worker in
  any lease state;
* every added unit is always in exactly one of pending / leased / done /
  parked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.leases import Lease, LeaseManager


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def manager(ttl=10.0, max_attempts=3):
    clock = FakeClock()
    return LeaseManager(ttl=ttl, max_attempts=max_attempts, now=clock), clock


class TestBasics:
    def test_grant_is_exclusive_until_expiry(self):
        mgr, clock = manager()
        mgr.add_units(["u1"])
        lease = mgr.grant("w0")
        assert lease == Lease("u1", "w0", 1, 10.0)
        assert mgr.grant("w1") is None  # nothing pending while leased
        clock.advance(11.0)
        assert [e[0] for e in mgr.expire()] == ["u1"]
        assert mgr.grant("w1").worker == "w1"

    def test_renew_extends_only_own_lease(self):
        mgr, clock = manager(ttl=5.0)
        mgr.add_units(["u1"])
        mgr.grant("w0")
        clock.advance(4.0)
        assert not mgr.renew("u1", "w1")  # someone else's lease
        assert not mgr.renew("u2", "w0")  # unknown unit
        assert mgr.renew("u1", "w0")
        clock.advance(4.0)
        assert mgr.expire() == []  # renewed past the original expiry

    def test_duplicate_add_ignored(self):
        mgr, _ = manager()
        mgr.add_units(["u1", "u1"])
        mgr.add_units(["u1"])
        assert mgr.pending == ("u1",)
        mgr.grant("w0")
        mgr.add_units(["u1"])
        assert mgr.pending == ()

    def test_completion_idempotent_and_lease_agnostic(self):
        mgr, clock = manager()
        mgr.add_units(["u1"])
        mgr.grant("w0")
        clock.advance(11.0)
        mgr.expire()
        mgr.grant("w1")
        # w0 finishes late: its lease is long gone, result still counts.
        assert mgr.complete("u1")
        assert not mgr.complete("u1")  # w1's duplicate is discarded
        assert mgr.duplicate_completions == 1
        assert mgr.done == {"u1"}
        assert mgr.outstanding() == 0

    def test_fail_requeues_then_parks_at_budget(self):
        mgr, _ = manager(max_attempts=2)
        mgr.add_units(["u1"])
        mgr.grant("w0")
        assert mgr.fail("u1", "w0", "boom") == "retry"
        mgr.grant("w1")
        assert mgr.fail("u1", "w1", "boom") == "parked"
        assert "u1" in mgr.parked
        assert mgr.grant("w2") is None  # parked units never granted

    def test_stale_fail_reports_ignored(self):
        mgr, clock = manager()
        mgr.add_units(["u1"])
        mgr.grant("w0")
        assert mgr.fail("u1", "w1", "not mine") is None
        clock.advance(11.0)
        mgr.expire()
        assert mgr.fail("u1", "w0", "late") is None  # lease already swept

    def test_replayed_attempts_count_toward_budget(self):
        mgr, _ = manager(max_attempts=2)
        mgr.add_units(["u1"])
        mgr.record_failed_attempt("u1")  # journal replay of one failure
        mgr.grant("w0")
        assert mgr.fail("u1", "w0", "boom") == "parked"


# ---------------------------------------------------------------------------
# Property tests: drive a random op sequence, check invariants throughout.
# ---------------------------------------------------------------------------
UNIT_IDS = [f"u{i}" for i in range(6)]
WORKERS = [f"w{i}" for i in range(3)]

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from(UNIT_IDS)),
        st.tuples(st.just("grant"), st.sampled_from(WORKERS)),
        st.tuples(
            st.just("complete"), st.sampled_from(UNIT_IDS)
        ),
        st.tuples(
            st.just("fail"),
            st.sampled_from(UNIT_IDS),
            st.sampled_from(WORKERS),
        ),
        st.tuples(st.just("advance"), st.floats(0.1, 15.0)),
        st.tuples(st.just("renew"), st.sampled_from(UNIT_IDS),
                  st.sampled_from(WORKERS)),
    ),
    max_size=60,
)


def check_invariants(mgr: LeaseManager):
    pending = set(mgr.pending)
    leased = set(mgr.leased)
    done = mgr.done
    parked = set(mgr.parked)
    # Exactly one state per unit.
    assert not pending & leased
    assert not pending & done
    assert not pending & parked
    assert not leased & done
    assert not leased & parked
    assert not done & parked
    # No duplicate queue entries.
    assert len(mgr.pending) == len(pending)
    # Attempt budget: anything still grantable has attempts headroom...
    for uid in pending:
        assert mgr.attempts(uid) <= mgr.max_attempts
    # ...and a live lease's attempt count never exceeds the budget.
    for uid, lease in mgr.leased.items():
        assert 1 <= lease.attempt <= mgr.max_attempts
        assert lease.attempt == mgr.attempts(uid)


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_random_op_sequences_preserve_invariants(ops):
    clock = FakeClock()
    mgr = LeaseManager(ttl=5.0, max_attempts=3, now=clock)
    added = set()
    for op in ops:
        if op[0] == "add":
            mgr.add_units([op[1]])
            added.add(op[1])
        elif op[0] == "grant":
            lease = mgr.grant(op[1])
            if lease is not None:
                assert lease.unit_id in added
        elif op[0] == "complete":
            # Completions register unknown units as done (the
            # coordinator may replay a completion ahead of its plan).
            mgr.complete(op[1])
            added.add(op[1])
        elif op[0] == "fail":
            mgr.fail(op[1], op[2], "boom")
        elif op[0] == "advance":
            clock.advance(op[1])
            for uid, worker, outcome in mgr.expire():
                assert outcome in ("retry", "parked")
        elif op[0] == "renew":
            mgr.renew(op[1], op[2])
        check_invariants(mgr)
    # Conservation: every added unit is in exactly one terminal bucket.
    states = (
        set(mgr.pending) | set(mgr.leased) | mgr.done | set(mgr.parked)
    )
    assert states == {u for u in added if u in states}
    assert len(set(mgr.pending)) + len(mgr.leased) + len(
        mgr.done & added
    ) + len(set(mgr.parked) & added) == len(added)


@settings(max_examples=100, deadline=None)
@given(
    nunits=st.integers(1, 6),
    max_attempts=st.integers(1, 4),
    fail_rounds=st.integers(0, 6),
)
def test_every_unit_eventually_parks_under_permanent_failure(
    nunits, max_attempts, fail_rounds
):
    """Workers that always fail drive every unit to parked within the
    attempt budget — never an infinite requeue loop."""
    clock = FakeClock()
    mgr = LeaseManager(ttl=5.0, max_attempts=max_attempts, now=clock)
    mgr.add_units([f"u{i}" for i in range(nunits)])
    grants = 0
    while True:
        lease = mgr.grant("w0")
        if lease is None:
            break
        grants += 1
        mgr.fail(lease.unit_id, "w0", "always broken")
        assert grants <= nunits * max_attempts, "requeue loop"
    assert len(mgr.parked) == nunits
    assert mgr.pending == () and not mgr.leased


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_expiry_reassigns_exactly_once(data):
    """An expired lease produces exactly one requeue (or park): the unit
    shows up pending once, and double-sweeping finds nothing."""
    clock = FakeClock()
    mgr = LeaseManager(ttl=5.0, max_attempts=10, now=clock)
    units = [f"u{i}" for i in range(data.draw(st.integers(1, 5)))]
    mgr.add_units(units)
    granted = []
    while (lease := mgr.grant("w0")) is not None:
        granted.append(lease.unit_id)
    clock.advance(data.draw(st.floats(5.01, 50.0)))
    expired = mgr.expire()
    assert sorted(u for u, _, _ in expired) == sorted(granted)
    assert mgr.expire() == []  # second sweep: nothing left to expire
    assert sorted(mgr.pending) == sorted(granted)
    assert len(mgr.pending) == len(set(mgr.pending))
