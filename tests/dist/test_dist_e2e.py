"""End-to-end distributed generation: byte-identity, crash recovery,
elastic workers, incremental regeneration."""

import threading
import time

import pytest

import repro.api as api
from repro.core import GenerationError
from repro.dist import (
    CoordinatorThread,
    DistWorker,
    GenerateSpec,
    load_manifest,
    replay_journal,
    run_distributed,
    spawn_worker,
)
from repro.dist.coordinator import JOURNAL_NAME
from repro.resilience.faults import FAULT_EXIT_CODE


FN = "log2"
SPEC = GenerateSpec("tiny", [FN])


@pytest.fixture(scope="module")
def reference_bytes(tmp_path_factory):
    """Single-host artifact bytes for tiny/log2 (ground truth)."""
    ref_dir = tmp_path_factory.mktemp("ref")
    api.generate(FN, "tiny", out_dir=ref_dir)
    return (ref_dir / f"tiny_{FN}.json").read_bytes()


def run_worker_inline(port, **kwargs):
    """A worker inside this process (deterministic scheduling for tests)."""
    return DistWorker("127.0.0.1", port, **kwargs).run()


class TestByteIdentity:
    def test_distributed_matches_single_host(
        self, tmp_path, reference_bytes
    ):
        paths = run_distributed(SPEC, tmp_path, workers=2, timeout=180)
        assert paths[FN].read_bytes() == reference_bytes

    def test_api_generate_distributed(self, tmp_path, reference_bytes):
        gen, path = api.generate(
            FN, "tiny", out_dir=tmp_path, distributed=1
        )
        assert path.read_bytes() == reference_bytes
        assert gen.name == FN and gen.family_name == "tiny"


class TestCoordinatorCrashRecovery:
    def test_restart_resumes_from_journal(self, tmp_path, reference_bytes):
        """Kill the coordinator after the piece unit lands; the restarted
        coordinator must not re-run it and must finish byte-identically."""
        thread = CoordinatorThread(SPEC, tmp_path, lease_ttl=30.0)
        thread.start()
        # One unit only: the piece completes, the assemble stays pending.
        run_worker_inline(thread.port, max_units=1)
        status = thread.coordinator.status()
        assert status["units"]["done"] == 1
        assert not status["run_complete"]
        thread.stop()  # the "crash": no run_done in the journal

        records = replay_journal(tmp_path / JOURNAL_NAME).records
        assert [r["type"] for r in records if r["type"] == "done"] == ["done"]

        thread2 = CoordinatorThread(SPEC, tmp_path, lease_ttl=30.0)
        thread2.start()
        try:
            coordinator = thread2.coordinator
            # The completed piece survived the restart: only the
            # assemble unit is schedulable.
            assert coordinator.status()["units"]["done"] == 1
            assert list(coordinator.leases.pending) == [f"{FN}/1/assemble"]
            run_worker_inline(thread2.port)
            assert thread2.wait(60)
        finally:
            thread2.stop()
        assert (tmp_path / f"tiny_{FN}.json").read_bytes() == reference_bytes

    def test_restart_after_run_done_is_a_noop(self, tmp_path):
        run_distributed(SPEC, tmp_path, workers=1, timeout=180)
        thread = CoordinatorThread(SPEC, tmp_path)
        thread.start()
        try:
            # Everything spliced from the manifest; no schedulable work.
            assert thread.coordinator.run_complete.is_set()
            assert thread.coordinator.leases.outstanding() == 0
            assert thread.coordinator.incremental_hits == 1
        finally:
            thread.stop()


class TestElasticWorkers:
    def test_injected_worker_crash_is_survived(
        self, tmp_path, reference_bytes
    ):
        """A worker that dies mid-lease (injected hard-exit) costs a
        lease expiry, not the run: a clean worker finishes the unit."""
        thread = CoordinatorThread(SPEC, tmp_path, lease_ttl=1.0)
        thread.start()
        try:
            crasher = spawn_worker(
                "127.0.0.1", thread.port, "crasher",
                env={"REPRO_FAULTS": "dist.worker.crash"},
            )
            crasher.join(30)
            assert crasher.exitcode == FAULT_EXIT_CODE
            run_worker_inline(thread.port)
            assert thread.wait(120)
            status = thread.coordinator.status()
            assert not thread.coordinator.failed_functions()
        finally:
            thread.stop()
        assert (tmp_path / f"tiny_{FN}.json").read_bytes() == reference_bytes

    def test_poisonous_unit_parks_and_fails_the_function(self, tmp_path):
        """Every worker crashes on every unit: attempts exhaust, the unit
        parks, and the run fails loudly instead of looping forever."""
        with pytest.raises(GenerationError, match="parked"):
            run_distributed(
                SPEC, tmp_path, workers=1, lease_ttl=0.5, max_attempts=2,
                timeout=120,
                worker_env={"REPRO_FAULTS": "dist.worker.crash"},
            )

    def test_late_duplicate_completion_is_discarded(
        self, tmp_path, reference_bytes
    ):
        """A worker stalls past its lease; the unit is reassigned and
        completed elsewhere; the stalled worker's late result is counted
        as a duplicate, not double-applied."""
        thread = CoordinatorThread(SPEC, tmp_path, lease_ttl=1.0)
        thread.start()
        try:
            slow = threading.Thread(
                # No heartbeat (a partitioned worker) + an injected stall
                # longer than the TTL on its first unit.
                target=lambda: DistWorker(
                    "127.0.0.1", thread.port, worker_id="slow",
                    max_units=1, heartbeat=False,
                ).run(),
                daemon=True,
            )
            import os

            os.environ["REPRO_FAULTS"] = "dist.worker.slow:times=1,delay=2.5"
            try:
                slow.start()
                time.sleep(1.6)  # lease granted + expired by now
                os.environ.pop("REPRO_FAULTS")
                run_worker_inline(thread.port)
                slow.join(30)
            finally:
                os.environ.pop("REPRO_FAULTS", None)
            assert thread.wait(120)
            assert thread.coordinator.leases.duplicate_completions >= 1
        finally:
            thread.stop()
        assert (tmp_path / f"tiny_{FN}.json").read_bytes() == reference_bytes


class TestIncremental:
    def test_unchanged_rerun_splices(self, tmp_path, reference_bytes):
        run_distributed(SPEC, tmp_path, workers=1, timeout=180)
        artifact = tmp_path / f"tiny_{FN}.json"
        first_mtime = artifact.stat().st_mtime_ns
        paths = run_distributed(SPEC, tmp_path, workers=1, timeout=60)
        assert paths[FN].read_bytes() == reference_bytes
        assert artifact.stat().st_mtime_ns == first_mtime  # not rewritten
        assert load_manifest(tmp_path)[FN]["inputs_hash"]

    def test_tampered_artifact_is_rebuilt(self, tmp_path, reference_bytes):
        run_distributed(SPEC, tmp_path, workers=1, timeout=180)
        artifact = tmp_path / f"tiny_{FN}.json"
        artifact.write_bytes(b'{"tampered": true}')
        paths = run_distributed(SPEC, tmp_path, workers=1, timeout=180)
        assert paths[FN].read_bytes() == reference_bytes

    def test_param_override_dirties_only_that_function(self, tmp_path):
        spec2 = GenerateSpec("tiny", [FN, "exp2"])
        run_distributed(spec2, tmp_path, workers=2, timeout=300)
        log2_mtime = (tmp_path / f"tiny_{FN}.json").stat().st_mtime_ns
        dirty = GenerateSpec(
            "tiny", [FN, "exp2"], overrides={"exp2": {"seed": 3}}
        )
        thread = CoordinatorThread(dirty, tmp_path)
        thread.start()
        try:
            coordinator = thread.coordinator
            assert coordinator.incremental_hits == 1  # log2 spliced
            pending_fns = {u.split("/")[0] for u in coordinator.leases.pending}
            assert pending_fns == {"exp2"}
            run_worker_inline(thread.port)
            assert thread.wait(180)
        finally:
            thread.stop()
        assert (
            tmp_path / f"tiny_{FN}.json"
        ).stat().st_mtime_ns == log2_mtime
