"""Write-ahead journal: framing, torn-tail repair, byte-level fuzz."""

import os
import struct

import pytest

from repro.dist.journal import (
    _HEAD,
    Journal,
    encode_record,
    replay_journal,
)
from repro.resilience.faults import InjectedFault


RECORDS = [
    {"type": "run", "spec_hash": "abc"},
    {"type": "plan", "fn": "log2", "nsplits": 1},
    {"type": "done", "unit": "log2/1/0", "result": {"stats": {"lp_solves": 3}}},
    {"type": "fail", "unit": "log2/1/0", "worker": "w0", "reason": "boom"},
    {"type": "run_done"},
]


def write_journal(path, records):
    with Journal.open(path)[0] as j:
        for r in records:
            j.append(r)
    return path


class TestRoundTrip:
    def test_replay_returns_all_records(self, tmp_path):
        path = write_journal(tmp_path / "j.bin", RECORDS)
        replay = replay_journal(path)
        assert replay.records == RECORDS
        assert replay.torn_bytes == 0
        assert replay.valid_bytes == path.stat().st_size

    def test_missing_file_is_empty_journal(self, tmp_path):
        replay = replay_journal(tmp_path / "nope.bin")
        assert replay.records == [] and replay.torn_bytes == 0

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = write_journal(tmp_path / "j.bin", RECORDS[:2])
        journal, replayed = Journal.open(path)
        assert replayed == RECORDS[:2]
        with journal:
            journal.append(RECORDS[2])
        assert replay_journal(path).records == RECORDS[:3]

    def test_garbled_header_stops_replay(self, tmp_path):
        path = write_journal(tmp_path / "j.bin", RECORDS[:2])
        with open(path, "ab") as f:
            f.write(b"XX" + os.urandom(16))
        replay = replay_journal(path)
        assert replay.records == RECORDS[:2]
        assert replay.torn_bytes == 18

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = write_journal(tmp_path / "j.bin", RECORDS)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the middle record.
        offset = len(encode_record(RECORDS[0])) + len(encode_record(RECORDS[1]))
        data[offset + _HEAD.size + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert replay_journal(path).records == RECORDS[:2]

    def test_absurd_length_field_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(struct.pack("<2sBII", b"RJ", 1, 1 << 30, 0))
        replay = replay_journal(path)
        assert replay.records == [] and replay.torn_bytes == path.stat().st_size


class TestTornTailRepair:
    def test_open_truncates_torn_tail(self, tmp_path):
        path = write_journal(tmp_path / "j.bin", RECORDS[:3])
        whole = path.stat().st_size
        with open(path, "ab") as f:
            f.write(encode_record(RECORDS[3])[:7])
        journal, replayed = Journal.open(path)
        with journal:
            assert replayed == RECORDS[:3]
            assert path.stat().st_size == whole
            journal.append(RECORDS[3])
        assert replay_journal(path).records == RECORDS[:4]

    def test_injected_torn_write_fault(self, tmp_path, monkeypatch):
        """The dist.journal.torn-write site writes half a frame and dies;
        reopening recovers everything appended before the tear."""
        path = tmp_path / "j.bin"
        journal, _ = Journal.open(path)
        with journal:
            journal.append(RECORDS[0])
            journal.append(RECORDS[1])
            monkeypatch.setenv("REPRO_FAULTS", "dist.journal.torn-write:times=1")
            with pytest.raises(InjectedFault):
                journal.append(RECORDS[2])
            monkeypatch.delenv("REPRO_FAULTS")
        assert replay_journal(path).torn_bytes > 0
        journal2, replayed = Journal.open(path)
        with journal2:
            assert replayed == RECORDS[:2]
            journal2.append(RECORDS[2])
        assert replay_journal(path).records == RECORDS[:3]


class TestTruncationFuzz:
    def test_every_truncation_offset_recovers_complete_appends(self, tmp_path):
        """Chop the journal at *every* byte offset: replay must recover
        exactly the records whose frames fit inside the prefix — no
        crash, no partial record, no spurious extras."""
        frames = [encode_record(r) for r in RECORDS]
        full = b"".join(frames)
        # Frame boundaries tell us the expected record count per length.
        boundaries = []
        acc = 0
        for frame in frames:
            acc += len(frame)
            boundaries.append(acc)
        path = tmp_path / "j.bin"
        for cut in range(len(full) + 1):
            path.write_bytes(full[:cut])
            expected = sum(1 for b in boundaries if b <= cut)
            replay = replay_journal(path)
            assert replay.records == RECORDS[:expected], f"cut={cut}"
            assert replay.valid_bytes == (
                boundaries[expected - 1] if expected else 0
            )
            assert replay.torn_bytes == cut - replay.valid_bytes
            # Open-for-append must repair to the same prefix.
            journal, replayed = Journal.open(path)
            journal.close()
            assert replayed == RECORDS[:expected]
            assert path.stat().st_size == replay.valid_bytes
