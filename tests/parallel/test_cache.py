"""The persistent oracle cache: exact round trips and warm-run behavior."""

from fractions import Fraction

import pytest

from repro.fp import FPValue, RoundingMode, T8, T10
from repro.fp.rounding import IEEE_MODES
from repro.mp import Oracle
from repro.parallel import CachedOracle, OracleCache, absorb_entries, open_oracle
from repro.parallel.cache import decode_raw_entry, make_key, raw_entry

F = Fraction


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "oracle.sqlite")


class TestOracleCache:
    def test_round_trips_every_bit_pattern(self, cache_path):
        """Every T8 bit pattern — signed zeros, subnormals, extremes —
        comes back with identical bits."""
        with OracleCache(cache_path) as cache:
            for bits in range(1 << T8.total_bits):
                v = FPValue(T8, bits)
                if v.is_nan:
                    continue
                cache.put("exp2", F(bits, 7), T8, RoundingMode.RNE, v)
            cache.flush()
        with OracleCache(cache_path, read_only=True) as cache:
            for bits in range(1 << T8.total_bits):
                v = FPValue(T8, bits)
                if v.is_nan:
                    continue
                got = cache.get("exp2", F(bits, 7), T8, RoundingMode.RNE)
                assert got is not None
                assert got.bits == bits
                assert got.fmt == T8

    def test_signed_zero_distinct(self, cache_path):
        pos = FPValue(T8, 0)
        neg = FPValue(T8, T8.sign_mask)
        assert pos.value == neg.value == 0
        with OracleCache(cache_path) as cache:
            cache.put("sinpi", F(1), T8, RoundingMode.RNE, pos)
            cache.put("sinpi", F(-1), T8, RoundingMode.RNE, neg)
            assert cache.get("sinpi", F(1), T8, RoundingMode.RNE).bits == 0
            got = cache.get("sinpi", F(-1), T8, RoundingMode.RNE)
            assert got.bits == T8.sign_mask
            assert str(got.value) == "0"  # value-equal, bit-distinct

    def test_key_separates_format_mode_and_input(self, cache_path):
        """Distinct (fn, x, fmt, mode) never collide."""
        keys = {
            make_key("ln", F(1, 3), T8, RoundingMode.RNE),
            make_key("ln", F(1, 3), T10, RoundingMode.RNE),
            make_key("ln", F(1, 3), T8, RoundingMode.RTO),
            make_key("ln", F(2, 3), T8, RoundingMode.RNE),
            make_key("log2", F(1, 3), T8, RoundingMode.RNE),
        }
        assert len(keys) == 5

    def test_read_only_never_writes(self, cache_path):
        with OracleCache(cache_path) as cache:
            cache.put("ln", F(1), T8, RoundingMode.RNE, FPValue(T8, 5))
        with OracleCache(cache_path, read_only=True) as cache:
            cache.put("ln", F(2), T8, RoundingMode.RNE, FPValue(T8, 6))
            cache.flush()
        with OracleCache(cache_path, read_only=True) as cache:
            assert len(cache) == 1
            assert cache.get("ln", F(2), T8, RoundingMode.RNE) is None

    def test_pending_entries_visible_before_flush(self, cache_path):
        with OracleCache(cache_path) as cache:
            cache.put("ln", F(3), T8, RoundingMode.RNE, FPValue(T8, 9))
            assert cache.get("ln", F(3), T8, RoundingMode.RNE).bits == 9
            assert len(cache) == 1


class TestRawEntries:
    def test_round_trip(self):
        v = FPValue(T10, 1)  # smallest subnormal
        entry = raw_entry("cospi", F(-7, 16), T10, RoundingMode.RTO, v)
        (fn, x, fmt, mode), got = decode_raw_entry(entry)
        assert (fn, x, mode) == ("cospi", F(-7, 16), RoundingMode.RTO)
        assert fmt == T10 and got.bits == 1 and got.fmt == T10

    def test_absorb_entries_seeds_memo(self):
        src = Oracle()
        want = src.correctly_rounded("log2", F(3, 2), T8, RoundingMode.RNE)
        entry = raw_entry("log2", F(3, 2), T8, RoundingMode.RNE, want)

        dst = Oracle()
        absorb_entries(dst, [entry])
        got = dst.correctly_rounded("log2", F(3, 2), T8, RoundingMode.RNE)
        assert got.bits == want.bits
        assert dst.stats.computes == 0  # memo hit, no Ziv loop


class TestCachedOracle:
    def test_cold_then_warm(self, cache_path):
        inputs = [F(k, 16) for k in range(1, 40)]
        cold = open_oracle(cache_path)
        want = [
            cold.correctly_rounded("ln", x, T10, RoundingMode.RNE)
            for x in inputs
        ]
        assert cold.stats.computes == len(inputs)
        cold.close()

        warm = open_oracle(cache_path)
        got = [
            warm.correctly_rounded("ln", x, T10, RoundingMode.RNE)
            for x in inputs
        ]
        assert [v.bits for v in got] == [v.bits for v in want]
        assert warm.stats.computes == 0
        assert warm.stats.disk_hits == len(inputs)
        warm.close()

    def test_warm_all_modes(self, cache_path):
        x = F(5, 8)
        cold = open_oracle(cache_path)
        want = cold.correctly_rounded_all("exp2", x, T8, IEEE_MODES)
        cold.close()

        warm = open_oracle(cache_path)
        got = warm.correctly_rounded_all("exp2", x, T8, IEEE_MODES)
        assert {m: v.bits for m, v in got.items()} == {
            m: v.bits for m, v in want.items()
        }
        assert warm.stats.computes == 0
        warm.close()

    def test_record_new_captures_disk_hits(self, cache_path):
        """Workers must ship *all* resolutions below the memo — fresh
        computes and disk hits alike — so the parent memo stays warm."""
        seed = open_oracle(cache_path)
        seed.correctly_rounded("log2", F(3), T8, RoundingMode.RNE)
        seed.close()

        worker = open_oracle(cache_path, read_only=True, record_new=True)
        worker.correctly_rounded("log2", F(3), T8, RoundingMode.RNE)  # disk hit
        worker.correctly_rounded("log2", F(5), T8, RoundingMode.RNE)  # compute
        drained = worker.drain_new()
        assert len(drained) == 1 + 1
        assert worker.drain_new() == []  # drained exactly once

    def test_no_disk_layer_still_works(self):
        o = CachedOracle(None, record_new=True)
        v = o.correctly_rounded("ln", F(2), T8, RoundingMode.RNE)
        assert v.fmt == T8
        assert len(o.drain_new()) == 1
