"""Sharded runs must be bit-identical to serial ones, for any job count."""

import pytest

from repro.fp.encode import FPValue

from repro.core import generate_function
from repro.fp import IEEE_MODES, T8, T10
from repro.funcs import TINY_CONFIG, make_pipeline
from repro.libm.baselines import GeneratedLibrary
from repro.mp import Oracle
from repro.parallel import open_oracle, resolve_jobs
from repro.verify import verify_exhaustive


def _fingerprint(gen):
    """Everything that defines a generated function, bit-exactly."""
    return (
        [p.poly.coefficients for p in gen.pieces],
        [p.poly.term_counts for p in gen.pieces],
        [p.r_max for p in gen.pieces],
        sorted(gen.specials.items()),
        gen.stats.constraints,
    )


class TestGenerationDeterminism:
    def test_jobs_4_matches_serial(self):
        serial = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=1
        )
        sharded = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=4
        )
        assert _fingerprint(sharded) == _fingerprint(serial)
        assert sharded.stats.jobs == 4

    def test_warm_cache_matches_cold(self, tmp_path):
        path = str(tmp_path / "oracle.sqlite")
        cold_oracle = open_oracle(path)
        cold = generate_function(
            make_pipeline("exp2", TINY_CONFIG, cold_oracle), jobs=1
        )
        cold_oracle.close()
        assert cold_oracle.stats.computes > 0

        warm_oracle = open_oracle(path)
        warm = generate_function(
            make_pipeline("exp2", TINY_CONFIG, warm_oracle), jobs=1
        )
        assert _fingerprint(warm) == _fingerprint(cold)
        assert warm_oracle.stats.computes == 0  # every Ziv loop skipped
        assert warm_oracle.stats.disk_hits > 0
        warm_oracle.close()

    def test_sharded_with_cache_matches(self, tmp_path):
        path = str(tmp_path / "oracle.sqlite")
        plain = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=1
        )
        oracle = open_oracle(path)
        sharded = generate_function(
            make_pipeline("log2", TINY_CONFIG, oracle), jobs=2
        )
        oracle.close()
        assert _fingerprint(sharded) == _fingerprint(plain)

    def test_phase_timings_recorded(self):
        gen = generate_function(make_pipeline("log2", TINY_CONFIG, Oracle()))
        phases = gen.stats.phase_seconds
        for key in ("constraints", "oracle", "lp", "runtime-check"):
            assert key in phases, phases
            assert phases[key] >= 0.0
        assert phases["constraints"] <= gen.stats.wall_seconds


class _BitFlipLibrary:
    """Flips the result's low bit everywhere: nearly every check fails.

    Module-level so fork-started pool workers can reconstruct it.
    """

    label = "bitflip"

    def __init__(self, inner):
        self.inner = inner

    def rounded(self, fn, v, mode, level):
        got = self.inner.rounded(fn, v, mode, level)
        return FPValue(got.fmt, got.bits ^ 1)


class TestVerifyDeterminism:
    @pytest.fixture(scope="class")
    def lib(self, oracle, tiny_generated):
        pipe, gen = tiny_generated("exp2")
        return GeneratedLibrary({"exp2": pipe}, {"exp2": gen}, label="rlibm-prog")

    def _fields(self, rep):
        return (
            rep.total_checks,
            rep.wrong,
            {m: n for m, n in rep.by_mode.items()},
            [(f.input_bits, f.mode, f.got_bits, f.want_bits) for f in rep.failures],
        )

    def test_jobs_3_matches_serial(self, lib, oracle):
        for fmt, level in ((T8, 0), (T10, 1)):
            serial = verify_exhaustive(lib, "exp2", fmt, level, oracle, IEEE_MODES)
            sharded = verify_exhaustive(
                lib, "exp2", fmt, level, Oracle(), IEEE_MODES, jobs=3
            )
            assert self._fields(sharded) == self._fields(serial)
            assert sharded.wall_seconds > 0.0

    def test_failures_merge_in_input_order(self, lib, oracle):
        """A broken library's recorded failures match serial order and cap."""
        broken = _BitFlipLibrary(lib)
        serial = verify_exhaustive(broken, "exp2", T8, 0, oracle, IEEE_MODES)
        sharded = verify_exhaustive(
            broken, "exp2", T8, 0, Oracle(), IEEE_MODES, jobs=3
        )
        assert serial.wrong > 0
        assert len(serial.failures) == 32  # cap reached
        assert self._fields(sharded) == self._fields(serial)


class TestResolveJobs:
    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_means_all_cores(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)
