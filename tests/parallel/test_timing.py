"""Phase-timing accumulator and report formatting."""

import time

from repro.parallel import PhaseTimings, format_phase_report


class TestPhaseTimings:
    def test_phase_accumulates(self):
        t = PhaseTimings()
        with t.phase("lp"):
            time.sleep(0.002)
        with t.phase("lp"):
            time.sleep(0.002)
        assert t.get("lp") >= 0.004
        assert t.get("oracle") == 0.0

    def test_add_and_merge(self):
        a = PhaseTimings()
        a.add("oracle", 1.5)
        b = PhaseTimings()
        b.add("oracle", 0.5)
        b.add("screen", 2.0)
        a.merge(b)
        assert a.as_dict() == {"oracle": 2.0, "screen": 2.0}

    def test_nested_phases_both_charged(self):
        t = PhaseTimings()
        with t.phase("constraints"):
            with t.phase("oracle"):
                time.sleep(0.002)
        assert t.get("constraints") >= t.get("oracle") >= 0.002

    def test_report_shape(self):
        t = PhaseTimings()
        t.add("lp", 3.0)
        t.add("oracle", 1.0)
        text = format_phase_report(t.as_dict(), total=4.0)
        lines = text.splitlines()
        assert lines[0].split()[0] == "lp"  # sorted by share, descending
        assert "75.0%" in lines[0]
        assert lines[-1].split()[0] == "wall"

    def test_report_without_total(self):
        text = format_phase_report({"lp": 1.0})
        assert "lp" in text and "wall" not in text
