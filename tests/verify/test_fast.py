"""Vectorized RO-interval verification."""

import numpy as np

from repro.funcs import TINY_CONFIG
from repro.verify.fast import fast_verify, fast_verify_level


class TestFastVerify:
    def test_generated_all_correct(self, tiny_generated):
        pipe, gen = tiny_generated("exp2")
        ok, reports = fast_verify(pipe, gen)
        assert ok
        assert len(reports) == TINY_CONFIG.levels
        for rep in reports:
            assert rep.total > 0
            assert rep.screened_ok + rep.exact_rechecks == rep.total
            # The double screen clears the vast majority of inputs.
            assert rep.screened_ok >= 0.9 * rep.total

    def test_detects_corruption(self, tiny_generated):
        from repro.core.polynomial import ProgressivePolynomial
        from repro.core.search import GeneratedFunction, Piece
        from fractions import Fraction

        pipe, gen = tiny_generated("exp2")
        poly = gen.pieces[0].poly
        bad_c = list(poly.coefficients[0])
        bad_c[0] = bad_c[0] * (1 + Fraction(1, 1 << 8))
        bad_poly = ProgressivePolynomial(
            poly.shapes, (tuple(bad_c),), poly.term_counts
        )
        bad = GeneratedFunction(
            gen.name, gen.family_name, [Piece(bad_poly, None)], dict(gen.specials)
        )
        ok, reports = fast_verify(pipe, bad)
        assert not ok
        assert any(rep.wrong for rep in reports)

    def test_input_subset(self, tiny_generated):
        pipe, gen = tiny_generated("log2")
        xs = np.array([1.5, 2.5, 3.25, 7.0])
        rep = fast_verify_level(pipe, gen, 0, xs)
        assert rep.total == 4
        assert rep.all_correct

    def test_agrees_with_slow_path(self, tiny_generated, oracle):
        """fast_verify and the per-mode exhaustive checker must agree on
        correctness for the same artifact."""
        from repro.fp import IEEE_MODES, T8
        from repro.libm.baselines import GeneratedLibrary
        from repro.verify import verify_exhaustive

        pipe, gen = tiny_generated("sinh")
        ok, _ = fast_verify(pipe, gen)
        lib = GeneratedLibrary({"sinh": pipe}, {"sinh": gen})
        rep = verify_exhaustive(lib, "sinh", T8, 0, oracle, IEEE_MODES)
        assert ok == rep.all_correct
