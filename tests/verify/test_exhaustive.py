"""The exhaustive verification harness."""

import pytest

from repro.fp import IEEE_MODES, RoundingMode, T8, T10
from repro.funcs import TINY_CONFIG
from repro.libm.baselines import GeneratedLibrary, Library
from repro.verify import verify_exhaustive, verify_matrix


@pytest.fixture(scope="module")
def prog_lib(oracle, tiny_generated):
    pipe, gen = tiny_generated("exp2")
    return GeneratedLibrary({"exp2": pipe}, {"exp2": gen}, label="rlibm-prog")


class _BrokenLibrary(Library):
    """Off-by-an-ulp everywhere: every inexact result should be flagged."""

    label = "broken"

    def __init__(self, inner):
        self.inner = inner

    def raw(self, fn, xd, level):
        y = self.inner.raw(fn, xd, level)
        return y * (1.0 + 2.0**-8)


class TestVerifyExhaustive:
    def test_generated_is_all_correct(self, prog_lib, oracle):
        for fmt, level in ((T8, 0), (T10, 1)):
            report = verify_exhaustive(prog_lib, "exp2", fmt, level, oracle)
            assert report.all_correct, report.failures[:5]
            assert report.total_checks == 0 or report.wrong == 0
            assert "OK" in report.summary()

    def test_all_six_modes(self, prog_lib, oracle):
        modes = list(IEEE_MODES) + [RoundingMode.RTO]
        report = verify_exhaustive(prog_lib, "exp2", T8, 0, oracle, modes=modes)
        assert report.all_correct
        assert set(report.by_mode) == set(modes)

    def test_broken_library_flagged(self, prog_lib, oracle):
        broken = _BrokenLibrary(prog_lib)
        report = verify_exhaustive(broken, "exp2", T8, 0, oracle)
        assert not report.all_correct
        assert report.wrong > 20
        assert len(report.failures) <= 32  # recording cap
        assert "WRONG" in report.summary()

    def test_input_subset(self, prog_lib, oracle):
        from repro.fp import FPValue

        inputs = [FPValue(T8, b) for b in range(16)]
        report = verify_exhaustive(
            prog_lib, "exp2", T8, 0, oracle, inputs=inputs,
            modes=[RoundingMode.RNE],
        )
        assert report.total_checks == 16

    def test_matrix(self, prog_lib, oracle):
        out = verify_matrix(
            [prog_lib], "exp2", TINY_CONFIG, oracle, modes=[RoundingMode.RNE]
        )
        assert len(out) == TINY_CONFIG.levels
        assert all(rep.all_correct for rep in out.values())
