"""The round-to-odd theorem holds on generated code for derived formats."""

import pytest

from repro.fp import FPFormat
from repro.funcs import TINY_CONFIG
from repro.verify.theorem import derived_formats, verify_derived_format, verify_theorem


class TestDerivedFormats:
    def test_tiny_family_derived(self):
        # T8 = F(8,4) and T10 = F(10,4): level 1 covers F(9,4); level 0
        # covers F(7,4) (k > |E|+1 = 5 -> k in {7}).
        d0 = derived_formats(TINY_CONFIG, 0)
        d1 = derived_formats(TINY_CONFIG, 1)
        assert FPFormat(7, 4) in d0
        assert d1 == [FPFormat(9, 4)]

    def test_family_members_excluded(self):
        for level in range(TINY_CONFIG.levels):
            for fmt in derived_formats(TINY_CONFIG, level):
                assert fmt not in TINY_CONFIG.formats


class TestTheoremHolds:
    @pytest.mark.parametrize("name", ["exp2", "log2", "sinh", "cospi"])
    def test_derived_formats_correct(self, name, oracle, tiny_generated):
        pipe, gen = tiny_generated(name)
        reports = verify_theorem(pipe, gen, oracle)
        assert reports, "no derived formats found"
        for fmt_name, rep in reports.items():
            assert rep.all_correct, (
                name,
                fmt_name,
                rep.wrong,
                rep.examples[:3],
            )
            assert rep.total_checks > 0

    def test_single_format_entry(self, oracle, tiny_generated):
        pipe, gen = tiny_generated("exp2")
        rep = verify_derived_format(
            pipe, gen, 1, FPFormat(9, 4), oracle
        )
        assert rep.all_correct
        from repro.fp import count_finite

        # Every finite pattern under all five IEEE modes.
        assert rep.total_checks == count_finite(FPFormat(9, 4)) * 5
