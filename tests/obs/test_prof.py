"""Per-span cProfile hooks."""

import pstats

from repro.obs import (
    configure_tracing,
    profile_stats_text,
    profiled_span_count,
    reset_profile,
    reset_tracing,
    span,
    write_profile,
)
from repro.obs.prof import profiled_region


def _busy():
    return sum(i * i for i in range(200))


class TestProfiledRegion:
    def test_disabled_by_default(self):
        with profiled_region("anything"):
            _busy()
        assert profiled_span_count() == 0
        assert profile_stats_text() == ""
        assert write_profile() is None

    def test_matching_spans_accumulate(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", "hot.loop")
        for _ in range(3):
            with profiled_region("hot.loop"):
                _busy()
            with profiled_region("cold.path"):
                _busy()
        assert profiled_span_count() == 3
        text = profile_stats_text()
        assert "function calls" in text

        out = tmp_path / "prof.pstats"
        assert write_profile(str(out)) == str(out)
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

        reset_profile()
        assert profiled_span_count() == 0

    def test_star_profiles_outermost_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "*")
        with profiled_region("outer"):
            with profiled_region("inner"):
                _busy()
        # One profile: the inner region is covered by the outer one.
        assert profiled_span_count() == 1

    def test_spans_route_through_profiler(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", "traced.region")
        configure_tracing(str(tmp_path / "trace.jsonl"))
        try:
            with span("traced.region"):
                _busy()
            with span("other.region"):
                _busy()
        finally:
            reset_tracing()
        assert profiled_span_count() == 1

    def test_profiling_works_without_tracing(self, monkeypatch):
        # Regression: the disabled-tracer fast path used to bypass the
        # profiler, so REPRO_PROFILE silently did nothing unless a
        # trace sink was also configured.
        monkeypatch.setenv("REPRO_PROFILE", "untraced.region")
        with span("untraced.region"):
            _busy()
        assert profiled_span_count() == 1
