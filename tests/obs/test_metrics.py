"""MetricsRegistry: instruments, JSON snapshot, Prometheus exposition."""

import math
import re
import threading

import pytest

from repro.obs import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)

SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+.eInf-]+$'
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(5)
        g.dec(2)
        g.inc(0.5)
        assert g.value == 3.5

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram([1.0, 10.0, 100.0])
        for v in (0.5, 0.7, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(556.2)
        assert snap["max"] == 500.0
        assert [b["count"] for b in snap["buckets"]] == [2, 1, 1, 1]
        # p50 reports the upper bound of the covering bucket; the
        # overflow bucket reports the observed max.
        assert snap["p50"] == 10.0
        assert snap["p99"] == 500.0
        assert Histogram([1.0]).quantile(0.99) == 0.0

    def test_histogram_thread_safety_totals(self):
        h = Histogram(DURATION_BUCKETS)

        def work():
            for _ in range(1000):
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.total == 4000
        assert h.sum == pytest.approx(4.0)

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)


class TestRegistry:
    def test_get_or_create_by_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", fn="exp2")
        b = reg.counter("repro_x_total", fn="exp2")
        c = reg.counter("repro_x_total", fn="log2")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("repro_x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", **{"bad-label": 1})

    def test_to_json_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total", help="events", kind="a").inc(3)
        reg.histogram("repro_lat_seconds", buckets=[1.0, 2.0]).observe(1.5)
        snap = reg.to_json()
        assert snap["repro_events_total"]["kind"] == "counter"
        (series,) = snap["repro_events_total"]["series"]
        assert series == {"labels": {"kind": "a"}, "value": 3}
        (hist,) = snap["repro_lat_seconds"]["series"]
        assert hist["count"] == 1


class TestPrometheusText:
    def test_exposition_format_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", help="requests", fn="exp2").inc(7)
        reg.gauge("repro_inflight").set(2)
        reg.histogram(
            "repro_latency_seconds", buckets=[0.1, 1.0], help="latency"
        ).observe(0.05)
        text = reg.to_prometheus()
        lines = text.strip().splitlines()
        assert "# HELP repro_requests_total requests" in lines
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_requests_total{fn="exp2"} 7' in lines
        assert "repro_inflight 2" in lines
        # Histogram: cumulative buckets, +Inf, sum and count.
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="1"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_latency_seconds_sum 0.05" in lines
        assert "repro_latency_seconds_count 1" in lines
        for line in lines:
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert SAMPLE_LINE.match(line), line

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_weird_total", path='C:\\dir\n"quoted"'
        ).inc()
        text = reg.to_prometheus()
        assert (
            'repro_weird_total{path="C:\\\\dir\\n\\"quoted\\""} 1' in text
        )

    def test_help_escaping_and_infinite_values(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", help="line1\nline2 \\ slash").set(math.inf)
        text = reg.to_prometheus()
        assert "# HELP repro_g line1\\nline2 \\\\ slash" in text
        assert "repro_g +Inf" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        reg.reset()
        assert reg.to_json() == {}
