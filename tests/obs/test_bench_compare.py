"""bench_compare: payload detection, tolerance edges, verdict shape."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
import bench_compare  # noqa: E402


def generation_payload(wall=10.0, total=None):
    return {
        "family": "tiny",
        "functions": {"log2": {"wall_seconds": wall}},
        "summary": {"total_wall_seconds": total if total is not None else wall},
    }


def serve_payload(ips=1000.0, speedup=50.0):
    return {
        "bench": "serve",
        "series": [{"batch": 8, "inputs_per_sec": ips}],
        "speedup_batched_vs_single": speedup,
    }


def serve_table_payload(table_ips=4000.0, vector_ips=2000.0):
    return {
        "bench": "serve_table",
        "tiers": {
            "table": {"series": [{"batch": 16, "inputs_per_sec": table_ips}]},
            "vector": {"series": [{"batch": 16, "inputs_per_sec": vector_ips}]},
        },
        "summary": {"speedup_table_vs_vector": table_ips / vector_ips},
    }


class TestCompareMetric:
    def test_directions(self):
        # Throughput halved: 50% regression either way you measure it.
        change, ok = bench_compare.compare_metric(100.0, 50.0, "higher", 0.25)
        assert change == pytest.approx(-0.5) and not ok
        # Wall time halved: an improvement for lower-is-better.
        change, ok = bench_compare.compare_metric(100.0, 50.0, "lower", 0.25)
        assert change == pytest.approx(0.5) and ok

    def test_exact_tolerance_boundary_passes(self):
        _, ok = bench_compare.compare_metric(100.0, 75.0, "higher", 0.25)
        assert ok  # change == -tolerance is allowed
        _, ok = bench_compare.compare_metric(100.0, 74.999, "higher", 0.25)
        assert not ok

    def test_zero_tolerance(self):
        assert bench_compare.compare_metric(10.0, 10.0, "higher", 0.0)[1]
        assert not bench_compare.compare_metric(10.0, 9.999, "higher", 0.0)[1]
        assert bench_compare.compare_metric(10.0, 11.0, "higher", 0.0)[1]

    def test_zero_or_missing_baseline_passes(self):
        assert bench_compare.compare_metric(0.0, 123.0, "higher", 0.25) == (
            0.0, True,
        )
        assert bench_compare.compare_metric(None, 123.0, "lower", 0.25)[1]

    def test_missing_candidate_fails(self):
        change, ok = bench_compare.compare_metric(10.0, None, "higher", 0.25)
        assert change is None and not ok


class TestComparePayloads:
    def test_detects_generation_and_serve(self):
        v = bench_compare.compare_payloads(
            generation_payload(), generation_payload()
        )
        assert v["kind"] == "generation" and v["ok"]
        v = bench_compare.compare_payloads(serve_payload(), serve_payload())
        assert v["kind"] == "serve" and v["ok"]

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError, match="kinds differ"):
            bench_compare.compare_payloads(
                generation_payload(), serve_payload()
            )

    def test_unrecognised_payload_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            bench_compare.compare_payloads({"nope": 1}, {"nope": 1})

    def test_generation_slowdown_fails(self):
        v = bench_compare.compare_payloads(
            generation_payload(10.0), generation_payload(20.0), tolerance=0.25
        )
        assert not v["ok"]
        assert "generation.log2.wall_seconds" in v["regressions"]
        assert "generation.total_wall_seconds" in v["regressions"]

    def test_serve_throughput_drop_fails_but_gain_passes(self):
        v = bench_compare.compare_payloads(
            serve_payload(1000.0), serve_payload(700.0, speedup=30.0),
            tolerance=0.25,
        )
        assert v["regressions"] == [
            "serve.batch_8.inputs_per_sec", "serve.speedup_batched_vs_single",
        ]
        v = bench_compare.compare_payloads(
            serve_payload(1000.0), serve_payload(5000.0, speedup=400.0)
        )
        assert v["ok"]

    def test_detects_serve_table_and_gates_speedup(self):
        v = bench_compare.compare_payloads(
            serve_table_payload(), serve_table_payload()
        )
        assert v["kind"] == "serve_table" and v["ok"]
        # The table tier losing its edge regresses the speedup metric
        # even when the vector side is unchanged.
        v = bench_compare.compare_payloads(
            serve_table_payload(4000.0, 2000.0),
            serve_table_payload(2400.0, 2000.0),
            tolerance=0.25,
        )
        assert not v["ok"]
        assert "serve_table.table.batch_16.inputs_per_sec" in v["regressions"]
        assert "serve_table.speedup_table_vs_vector" in v["regressions"]

    def test_metric_missing_from_candidate_fails(self):
        base = serve_payload()
        cand = serve_payload()
        cand["series"] = []  # the batch-8 series vanished
        v = bench_compare.compare_payloads(base, cand)
        assert "serve.batch_8.inputs_per_sec" in v["regressions"]

    def test_new_candidate_metric_is_informational(self):
        base = serve_payload()
        cand = serve_payload()
        cand["series"].append({"batch": 64, "inputs_per_sec": 9.0})
        v = bench_compare.compare_payloads(base, cand)
        assert v["ok"]
        new = [m for m in v["metrics"]
               if m["name"] == "serve.batch_64.inputs_per_sec"]
        assert new and new[0]["baseline"] is None and new[0]["ok"]


class TestMain:
    def _write(self, tmp_path, name, payload):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return str(p)

    def test_exit_codes_and_verdict_file(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", generation_payload(10.0))
        slow = self._write(tmp_path, "slow.json", generation_payload(30.0))
        out = tmp_path / "verdict.json"
        rc = bench_compare.main([base, slow, "--out", str(out), "--json"])
        assert rc == 1
        verdict = json.loads(out.read_text())
        assert verdict["ok"] is False
        assert json.loads(capsys.readouterr().out) == verdict

        rc = bench_compare.main([base, base])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_malformed_input_is_usage_error(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", generation_payload())
        rc = bench_compare.main([base, str(tmp_path / "missing.json")])
        assert rc == 2
        assert "bench_compare" in capsys.readouterr().err

    def test_wider_tolerance_passes_same_slowdown(self, tmp_path):
        base = self._write(tmp_path, "base.json", generation_payload(10.0))
        slow = self._write(tmp_path, "slow.json", generation_payload(12.0))
        assert bench_compare.main([base, slow, "--tolerance", "0.1"]) == 1
        assert bench_compare.main([base, slow, "--tolerance", "0.25"]) == 0
