"""Isolation for the process-global observability state."""

import pytest

from repro.obs import reset_profile, reset_registry, reset_tracing


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    """Every test starts and ends with pristine global tracer/registry.

    The tracer binds from ``REPRO_TRACE`` on first use, so the env vars
    are scrubbed too (monkeypatch restores the user's values after).
    """
    for var in ("REPRO_TRACE", "REPRO_TRACE_PARENT", "REPRO_PROFILE",
                "REPRO_PROFILE_OUT"):
        monkeypatch.delenv(var, raising=False)
    reset_tracing()
    reset_profile()
    reset_registry()
    yield
    reset_tracing()
    reset_profile()
    reset_registry()
