"""Span tracing: nesting, ordering, cross-process merge, analysis."""

import json
import os

from repro.core import generate_function
from repro.funcs import TINY_CONFIG, make_pipeline
from repro.mp import Oracle
from repro.obs import (
    configure_tracing,
    get_tracer,
    propagate_to_children,
    read_trace,
    reset_tracing,
    span,
    summarize_trace,
    trace_event,
    traced,
)


def _spans_by_name(spans):
    out = {}
    for rec in spans:
        out.setdefault(rec["name"], []).append(rec)
    return out


class TestSpanNesting:
    def test_nested_spans_carry_parent_ids(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with span("outer", kind="test"):
            with span("middle"):
                with span("inner"):
                    pass
            with span("middle"):
                pass
        reset_tracing()

        spans = read_trace(path)
        by_name = _spans_by_name(spans)
        assert sorted(by_name) == ["inner", "middle", "outer"]
        outer = by_name["outer"][0]
        assert "parent" not in outer
        assert outer["attrs"] == {"kind": "test"}
        for middle in by_name["middle"]:
            assert middle["parent"] == outer["span"]
        assert by_name["inner"][0]["parent"] == by_name["middle"][0]["span"]
        # One trace id, one process.
        assert {rec["trace"] for rec in spans} == {outer["trace"]}
        assert {rec["pid"] for rec in spans} == {os.getpid()}

    def test_spans_written_innermost_first(self, tmp_path):
        # A span line is appended when the span *finishes*, so the file
        # order is completion order: inner before outer.
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with span("outer"):
            with span("inner"):
                pass
        reset_tracing()
        names = [rec["name"] for rec in read_trace(path)]
        assert names == ["inner", "outer"]

    def test_sibling_threads_do_not_nest(self, tmp_path):
        # Span stacks are thread-local: a span opened on another thread
        # must not become the parent of this thread's spans.
        import threading

        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        started = threading.Event()
        release = threading.Event()

        def other():
            with span("other-thread"):
                started.set()
                release.wait(timeout=10)

        t = threading.Thread(target=other)
        t.start()
        started.wait(timeout=10)
        with span("main-thread"):
            pass
        release.set()
        t.join(timeout=10)
        reset_tracing()

        by_name = _spans_by_name(read_trace(path))
        assert "parent" not in by_name["main-thread"][0]
        assert "parent" not in by_name["other-thread"][0]

    def test_disabled_tracer_writes_nothing(self, tmp_path):
        handle_seen = []
        with span("ignored") as sp:
            sp.set(x=1)
            handle_seen.append(sp)
        assert not get_tracer().enabled
        assert handle_seen[0].attrs == {}

    def test_attrs_set_during_span_and_exceptions_still_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        try:
            with span("boom") as sp:
                sp.set(progress=3)
                raise RuntimeError("die")
        except RuntimeError:
            pass
        reset_tracing()
        rec = read_trace(path)[0]
        assert rec["name"] == "boom"
        assert rec["attrs"] == {"progress": 3}
        assert rec["dur"] >= 0

    def test_record_span_and_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        tracer = get_tracer()
        tracer.record_span("posthoc", ts=123.0, dur=0.5, op="eval")
        trace_event("tick", n=1)
        reset_tracing()
        by_name = _spans_by_name(read_trace(path))
        posthoc = by_name["posthoc"][0]
        assert posthoc["ts"] == 123.0 and posthoc["dur"] == 0.5
        assert posthoc["attrs"] == {"op": "eval"}
        assert by_name["tick"][0]["dur"] == 0.0

    def test_traced_decorator_names_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))

        @traced("custom.name")
        def work(x):
            return x + 1

        assert work(1) == 2
        reset_tracing()
        assert [rec["name"] for rec in read_trace(path)] == ["custom.name"]


class TestTraceFileRobustness:
    def test_read_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = {"name": "a", "trace": "t", "span": "s", "ts": 0.0,
                "dur": 1.0, "pid": 1}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"name": "torn", "tr'  # crashed writer's tail
            + "\n\n"
            + "not json at all\n"
            + json.dumps(dict(good, name="b")) + "\n"
        )
        assert [rec["name"] for rec in read_trace(path)] == ["a", "b"]


class TestPropagation:
    def test_env_exported_inside_block_and_restored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with span("parent"):
            parent_id = get_tracer().current_span_id()
            with propagate_to_children():
                assert os.environ["REPRO_TRACE"] == str(path)
                trace_id, _, span_id = (
                    os.environ["REPRO_TRACE_PARENT"].partition(":")
                )
                assert trace_id == get_tracer().trace_id
                assert span_id == parent_id
            assert "REPRO_TRACE_PARENT" not in os.environ
        reset_tracing()

    def test_disabled_propagation_is_noop(self):
        with propagate_to_children():
            assert "REPRO_TRACE" not in os.environ

    def test_child_process_inherits_parent_id(self, tmp_path):
        # Simulate a worker: bind a tracer from the env a parent
        # exported, emit a span, and check it parents correctly.
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with span("parent"):
            with propagate_to_children():
                env_trace = os.environ["REPRO_TRACE"]
                env_parent = os.environ["REPRO_TRACE_PARENT"]
        reset_tracing()

        os.environ["REPRO_TRACE"] = env_trace
        os.environ["REPRO_TRACE_PARENT"] = env_parent
        try:
            reset_tracing()  # what pool initializers do
            with span("child-work"):
                pass
        finally:
            os.environ.pop("REPRO_TRACE", None)
            os.environ.pop("REPRO_TRACE_PARENT", None)
            reset_tracing()

        by_name = _spans_by_name(read_trace(path))
        parent = by_name["parent"][0]
        child = by_name["child-work"][0]
        assert child["trace"] == parent["trace"]
        assert child["parent"] == parent["span"]


class TestSpawnWorkers:
    def test_spawn_worker_spans_merge_with_correct_parents(
        self, tmp_path, monkeypatch
    ):
        # The real thing: a spawn-started pool generating constraints
        # must land its chunk spans in the parent's trace file, under
        # the parent's open span, from distinct worker pids.
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        try:
            pipe = make_pipeline("log2", TINY_CONFIG, Oracle())
            gen = generate_function(pipe, seed=1, jobs=2)
        finally:
            reset_tracing()
        assert gen.num_pieces >= 1

        spans = read_trace(path)
        by_id = {rec["span"]: rec for rec in spans}
        by_name = _spans_by_name(spans)
        assert len({rec["trace"] for rec in spans}) == 1
        assert len({rec["pid"] for rec in spans}) >= 2  # parent + workers

        chunks = by_name["pool.gen_chunk"]
        assert chunks, "expected worker chunk spans"
        parent_pid = by_name["search.generate"][0]["pid"]
        for chunk in chunks:
            assert chunk["pid"] != parent_pid
            # Every chunk nests under the constraints-collection span
            # that was open when the pool was created.
            parent = by_id[chunk["parent"]]
            assert parent["name"] == "search.constraints"


class TestSummarize:
    def test_union_coverage(self):
        def rec(ts, dur, name="x", pid=1):
            return {"name": name, "trace": "t", "span": name + str(ts),
                    "ts": ts, "dur": dur, "pid": pid}

        # Overlapping spans are not double counted; gaps reduce coverage.
        summary = summarize_trace([rec(0.0, 1.0), rec(2.0, 1.0)])
        assert summary["wall_seconds"] == 3.0
        assert summary["covered_seconds"] == 2.0
        assert abs(summary["coverage"] - 2.0 / 3.0) < 1e-12

        summary = summarize_trace([rec(0.0, 10.0), rec(2.0, 10.0)])
        assert summary["covered_seconds"] == 12.0
        assert summary["coverage"] == 1.0

    def test_by_name_rollup(self):
        spans = [
            {"name": "a", "trace": "t", "span": "1", "ts": 0.0, "dur": 2.0,
             "pid": 1},
            {"name": "a", "trace": "t", "span": "2", "ts": 1.0, "dur": 4.0,
             "pid": 2},
            {"name": "b", "trace": "u", "span": "3", "ts": 0.5, "dur": 1.0,
             "pid": 1},
        ]
        summary = summarize_trace(spans)
        assert summary["spans"] == 3
        assert summary["traces"] == 2
        assert summary["processes"] == 2
        assert summary["by_name"]["a"] == {
            "count": 2, "total_seconds": 6.0, "max_seconds": 4.0,
        }

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary["spans"] == 0
        assert summary["coverage"] == 0.0
