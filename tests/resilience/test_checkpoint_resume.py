"""Checkpoint-resume: a killed generation run continues byte-identically."""

import json

import pytest

from repro import api
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    SearchCheckpoint,
    checkpoint_path_for,
    delete_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import InjectedFault

PARAMS = {"fn": "log2", "family": "tiny", "seed": 0}


def _ckpt(**kw):
    kw.setdefault("params", dict(PARAMS))
    kw.setdefault("nsplits", 2)
    kw.setdefault("pieces", [{"fake": 1}])
    kw.setdefault("failure_counts", [0])
    kw.setdefault("stats", {"lp_solves": 4})
    return SearchCheckpoint(**kw)


class TestSidecarFile:
    def test_path_naming(self, tmp_path):
        assert checkpoint_path_for(tmp_path / "tiny_log2.json") == (
            tmp_path / "tiny_log2.ckpt.json"
        )

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt())
        got = load_checkpoint(path, dict(PARAMS))
        assert got is not None
        assert got.nsplits == 2
        assert got.pieces == [{"fake": 1}]
        assert got.failure_counts == [0]
        assert got.stats == {"lp_solves": 4}

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt.json", PARAMS) is None

    def test_param_drift_ignored(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt())
        drifted = dict(PARAMS, seed=1)
        assert load_checkpoint(path, drifted) is None

    def test_corrupt_json_ignored(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        path.write_text("{not json")
        assert load_checkpoint(path, PARAMS) is None

    def test_future_version_ignored(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt())
        data = json.loads(path.read_text())
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        assert load_checkpoint(path, PARAMS) is None

    def test_v1_rng_state_sidecar_ignored(self, tmp_path):
        """Version-1 sidecars carried a threaded RNG state; the per-piece
        RNG scheme cannot resume them, so they restart the search."""
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt())
        data = json.loads(path.read_text())
        data["version"] = 1
        data["rng_state"] = {"state": 123}
        path.write_text(json.dumps(data))
        assert load_checkpoint(path, PARAMS) is None

    def test_inconsistent_checkpoint_ignored(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt(failure_counts=[0, 1]))  # 1 piece, 2 counts
        assert load_checkpoint(path, PARAMS) is None

    def test_delete_is_idempotent(self, tmp_path):
        path = tmp_path / "x.ckpt.json"
        save_checkpoint(path, _ckpt())
        delete_checkpoint(path)
        assert not path.exists()
        delete_checkpoint(path)  # missing file is fine


class TestCrashAndResume:
    def test_resumed_artifact_is_byte_identical(self, tmp_path, faults):
        ref_dir = tmp_path / "ref"
        run_dir = tmp_path / "run"
        _, ref_path = api.generate("log2", "tiny", out_dir=ref_dir)

        # Kill the run right after its first piece checkpoint.
        faults("search.crash:times=1")
        with pytest.raises(InjectedFault):
            api.generate("log2", "tiny", out_dir=run_dir)
        ckpt = run_dir / "tiny_log2.ckpt.json"
        assert ckpt.exists()

        faults("")  # clear: the resumed run is fault-free
        _, path = api.generate("log2", "tiny", out_dir=run_dir, resume=True)
        assert path.read_bytes() == ref_path.read_bytes()
        assert not ckpt.exists()  # sidecar cleaned up on success

    def test_resume_without_checkpoint_regenerates(self, tmp_path):
        ref_dir = tmp_path / "ref"
        run_dir = tmp_path / "run"
        _, ref_path = api.generate("log2", "tiny", out_dir=ref_dir)
        _, path = api.generate("log2", "tiny", out_dir=run_dir, resume=True)
        assert path.read_bytes() == ref_path.read_bytes()

    def test_no_checkpoint_flag_leaves_no_sidecar(self, tmp_path, faults):
        run_dir = tmp_path / "run"
        # The crash site fires right after a checkpoint write; with
        # checkpointing disabled it never triggers and no sidecar exists.
        faults("search.crash:times=1")
        _, path = api.generate(
            "log2", "tiny", out_dir=run_dir, checkpoint=False
        )
        assert path.exists()
        assert not (run_dir / "tiny_log2.ckpt.json").exists()

    def test_stale_checkpoint_from_other_params_is_ignored(
        self, tmp_path, faults
    ):
        run_dir = tmp_path / "run"
        faults("search.crash:times=1")
        with pytest.raises(InjectedFault):
            api.generate("log2", "tiny", out_dir=run_dir)
        faults("")
        # Different seed: the sidecar must not resume, and the artifact
        # must match a clean run at the new seed.
        ref_dir = tmp_path / "ref"
        _, ref_path = api.generate("log2", "tiny", out_dir=ref_dir, seed=1)
        _, path = api.generate(
            "log2", "tiny", out_dir=run_dir, seed=1, resume=True
        )
        assert path.read_bytes() == ref_path.read_bytes()
