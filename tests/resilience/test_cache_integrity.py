"""Oracle-cache self-healing: quarantine, schema versioning, degraded flush."""

import sqlite3
from fractions import Fraction

from repro.fp import FPValue, RoundingMode, T8
from repro.parallel.cache import SCHEMA_VERSION, OracleCache, open_oracle
from repro.resilience.faults import corrupt_file


def _put_get(cache):
    x = Fraction(1, 2)
    cache.put("exp2", x, T8, RoundingMode.RNE, FPValue(T8, 0x42))
    cache.flush()
    got = cache.get("exp2", x, T8, RoundingMode.RNE)
    assert got is not None and got.bits == 0x42


class TestQuarantine:
    def test_garbage_file_quarantined_and_rebuilt(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        path.write_bytes(b"this is not a sqlite database at all" * 20)
        cache = OracleCache(str(path))
        assert cache.quarantined is not None
        assert "corrupt-" in cache.quarantined
        # The old bytes were moved aside, not destroyed.
        assert b"not a sqlite database" in open(cache.quarantined, "rb").read()
        _put_get(cache)  # fresh cache is fully functional
        cache.close()

    def test_injected_corruption_heals(self, tmp_path, faults):
        path = tmp_path / "oracle.sqlite"
        with OracleCache(str(path)) as cache:
            _put_get(cache)
        faults("cache.corrupt:times=1")
        cache = OracleCache(str(path))
        assert cache.quarantined is not None
        assert cache.get("exp2", Fraction(1, 2), T8, RoundingMode.RNE) is None
        _put_get(cache)
        cache.close()

    def test_clean_reopen_is_not_quarantined(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        with OracleCache(str(path)) as cache:
            _put_get(cache)
        with OracleCache(str(path)) as cache:
            assert cache.quarantined is None
            got = cache.get("exp2", Fraction(1, 2), T8, RoundingMode.RNE)
            assert got is not None and got.bits == 0x42

    def test_quarantine_names_do_not_collide(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        seen = set()
        for _ in range(2):
            corrupt_file(str(path))
            cache = OracleCache(str(path))
            assert cache.quarantined not in seen
            seen.add(cache.quarantined)
            cache.close()


class TestSchemaVersion:
    def test_fresh_cache_is_stamped(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        OracleCache(str(path)).close()
        conn = sqlite3.connect(str(path))
        assert conn.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        conn.close()

    def test_version_zero_adopted_in_place(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(
            "CREATE TABLE oracle (key TEXT PRIMARY KEY, bits TEXT NOT NULL)"
        )
        conn.execute("INSERT INTO oracle VALUES ('k', '7')")
        conn.commit()
        conn.close()
        cache = OracleCache(str(path))
        assert cache.quarantined is None  # pre-versioning file kept
        assert len(cache) == 1
        cache.close()

    def test_future_version_quarantined(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE oracle (key TEXT PRIMARY KEY, bits TEXT)")
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        cache = OracleCache(str(path))
        assert cache.quarantined is not None
        cache.close()

    def test_wrong_table_shape_quarantined(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE oracle (unrelated INTEGER)")
        conn.commit()
        conn.close()
        cache = OracleCache(str(path))
        assert cache.quarantined is not None
        _put_get(cache)
        cache.close()


class TestDegradedFlush:
    def test_injected_flush_failure_degrades_not_crashes(self, tmp_path, faults):
        faults("cache.flush:times=1")
        cache = OracleCache(str(tmp_path / "oracle.sqlite"))
        cache.put("exp2", Fraction(1, 2), T8, RoundingMode.RNE, FPValue(T8, 1))
        cache.flush()  # injected failure
        assert cache.degraded is True
        # Entries stay pending (and readable) while degraded.
        got = cache.get("exp2", Fraction(1, 2), T8, RoundingMode.RNE)
        assert got is not None and got.bits == 1
        cache.flush()  # fault exhausted: persistence recovers
        assert cache.degraded is False
        cache.close()

        with OracleCache(str(tmp_path / "oracle.sqlite")) as reopened:
            got = reopened.get("exp2", Fraction(1, 2), T8, RoundingMode.RNE)
            assert got is not None and got.bits == 1

    def test_open_oracle_survives_corrupt_cache(self, tmp_path):
        path = tmp_path / "oracle.sqlite"
        corrupt_file(str(path))
        oracle = open_oracle(str(path))
        v = oracle.correctly_rounded(
            "exp2", Fraction(1, 2), T8, RoundingMode.RNE
        )
        assert v is not None
        oracle.close()
