"""Chaos-suite fixtures: scoped fault activation via ``REPRO_FAULTS``.

Every test that injects faults goes through the ``faults`` fixture so the
env var — and the cached per-process injector state — is guaranteed to be
cleared afterwards, even when the test fails.  Pool workers inherit the
environment at spawn time, so setting the spec in the parent is all a
multi-process chaos test needs.
"""

import pytest

from repro.resilience.faults import ENV_VAR, reset_injector


@pytest.fixture
def faults(monkeypatch):
    """Factory activating a fault spec for the duration of one test."""

    def activate(spec: str) -> None:
        reset_injector()
        monkeypatch.setenv(ENV_VAR, spec)

    yield activate
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_injector()


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    """Chaos tests must opt in explicitly; nothing leaks between tests."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_injector()
    yield
    reset_injector()
