"""The fault-injection harness itself: parsing, determinism, limits."""

import pytest

from repro.resilience.faults import (
    FaultSpec,
    InjectedFault,
    active_injector,
    corrupt_file,
    maybe_fire,
    maybe_raise,
    maybe_sleep,
    parse_fault_spec,
    reset_injector,
)


class TestParse:
    def test_full_spec(self):
        specs = parse_fault_spec(
            "worker.crash:p=0.5,seed=42,times=3;cache.corrupt:times=1"
        )
        assert set(specs) == {"worker.crash", "cache.corrupt"}
        wc = specs["worker.crash"]
        assert (wc.p, wc.seed, wc.times) == (0.5, 42, 3)
        assert specs["cache.corrupt"].times == 1

    def test_defaults(self):
        spec = parse_fault_spec("oracle.slow")["oracle.slow"]
        assert (spec.p, spec.seed, spec.times, spec.after) == (1.0, 0, None, 0)
        assert spec.delay == 0.05

    def test_delay_and_after(self):
        spec = parse_fault_spec("chunk.slow:delay=1.5,after=2")["chunk.slow"]
        assert spec.delay == 1.5
        assert spec.after == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "site:key",            # option without '='
            "site:p=x",            # non-numeric value
            "site:bogus=1",        # unknown option
            ":p=1",                # empty site name
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_empty_segments_skipped(self):
        assert parse_fault_spec(";;a.b:times=1;;") .keys() == {"a.b"}


class TestFaultSpec:
    def _sequence(self, n=32, **kw):
        spec = FaultSpec("s", **kw)
        return [spec.should_fire() for _ in range(n)]

    def test_seeded_sequences_reproduce(self):
        assert self._sequence(p=0.5, seed=7) == self._sequence(p=0.5, seed=7)

    def test_different_seeds_differ(self):
        assert self._sequence(p=0.5, seed=0) != self._sequence(p=0.5, seed=1)

    def test_p_one_always_fires(self):
        assert all(self._sequence(p=1.0))

    def test_p_zero_never_fires(self):
        assert not any(self._sequence(p=0.0))

    def test_times_caps_fires(self):
        seq = self._sequence(p=1.0, times=3)
        assert sum(seq) == 3 and seq[:3] == [True] * 3

    def test_after_skips_initial_calls(self):
        seq = self._sequence(p=1.0, after=5)
        assert seq[:5] == [False] * 5 and all(seq[5:])

    def test_after_does_not_consume_times(self):
        spec = FaultSpec("s", p=1.0, after=2, times=1)
        assert [spec.should_fire() for _ in range(4)] == [
            False, False, True, False,
        ]


class TestInjectorLifecycle:
    def test_unset_env_means_no_injector(self):
        assert active_injector() is None
        assert maybe_fire("worker.crash") is False
        maybe_raise("worker.crash")  # no-op
        maybe_sleep("worker.crash")  # no-op

    def test_env_activates_and_counts(self, faults):
        faults("a.b:times=1")
        assert maybe_fire("a.b") is True
        assert maybe_fire("a.b") is False  # times exhausted
        assert maybe_fire("other.site") is False

    def test_env_change_reparses(self, faults):
        faults("a.b:times=1")
        assert maybe_fire("a.b") is True
        faults("c.d:times=1")
        assert maybe_fire("a.b") is False
        assert maybe_fire("c.d") is True

    def test_reset_restores_counters(self, faults):
        faults("a.b:times=1")
        assert maybe_fire("a.b") is True
        assert maybe_fire("a.b") is False
        reset_injector()
        assert maybe_fire("a.b") is True

    def test_maybe_raise_fires(self, faults):
        faults("boom.site")
        with pytest.raises(InjectedFault):
            maybe_raise("boom.site")

    def test_malformed_env_fails_fast(self, faults):
        faults("oops:nope")
        with pytest.raises(ValueError):
            maybe_fire("oops")


class TestCorruptFile:
    def test_clobbers_existing_header(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"SQLite format 3\x00" + b"x" * 1000)
        corrupt_file(str(path))
        data = path.read_bytes()
        assert not data.startswith(b"SQLite format 3")
        assert len(data) == 1016  # only the head is scribbled over

    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "new.bin"
        corrupt_file(str(path))
        assert path.read_bytes().startswith(b"\xde\xad\xbe\xef")
