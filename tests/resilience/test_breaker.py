"""Circuit-breaker state machine, driven by a fake clock."""

from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(clock, **kw):
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("recovery_time", 10.0)
    return CircuitBreaker(clock=clock, **kw)


class TestStateMachine:
    def test_closed_allows(self):
        b = make(FakeClock())
        assert b.state == "closed"
        assert b.allow()

    def test_trips_after_consecutive_failures(self):
        b = make(FakeClock())
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = make(FakeClock())
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"

    def test_open_sheds_until_recovery(self):
        clock = FakeClock()
        b = make(clock)
        for _ in range(3):
            b.record_failure()
        assert not b.allow()
        assert b.shed == 1
        clock.now = 9.9
        assert not b.allow()

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        b = make(clock)
        for _ in range(3):
            b.record_failure()
        clock.now = 10.0
        assert b.state == "half_open"
        assert b.allow()          # the probe
        assert not b.allow()      # siblings still shed
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        b = make(clock)
        for _ in range(3):
            b.record_failure()
        clock.now = 10.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        clock.now = 20.0
        assert b.allow()  # recovery clock restarted from the reopen


class TestLatencyBudget:
    def test_slow_success_counts_as_failure(self):
        b = make(FakeClock(), latency_budget=0.5)
        for _ in range(3):
            b.record_success(seconds=0.9)
        assert b.state == "open"
        assert b.failures == 3

    def test_fast_success_is_fine(self):
        b = make(FakeClock(), latency_budget=0.5)
        for _ in range(10):
            b.record_success(seconds=0.1)
        assert b.state == "closed"
        assert b.successes == 10


class TestSnapshot:
    def test_reports_counters_and_state(self):
        clock = FakeClock()
        b = make(clock)
        b.record_success()
        for _ in range(3):
            b.record_failure()
        b.allow()
        snap = b.snapshot()
        assert snap["state"] == "open"
        assert snap["successes"] == 1
        assert snap["failures"] == 3
        assert snap["shed"] == 1
        assert snap["trips"] == 1
        assert snap["failure_threshold"] == 3
