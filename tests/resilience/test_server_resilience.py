"""Server resilience: backpressure, deadlines, breaker shedding, drops.

An overloaded or degraded server must answer *something structured*
fast — the one forbidden behavior is a hang.
"""

import asyncio

import pytest

from repro.funcs import TINY_CONFIG
from repro.resilience.faults import InjectedFault
from repro.serve import (
    BatchEvaluator,
    OracleUnavailable,
    ServeClient,
    ServerThread,
    ServeServer,
    ServingRegistry,
)


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """One saved tiny-family artifact; exp2 is left missing on purpose
    so eval requests for it ride the oracle tier."""
    from repro import api

    d = tmp_path_factory.mktemp("artifacts")
    api.generate("log2", TINY_CONFIG, out_dir=d)
    return d


def registry(artifact_dir, names=("log2", "exp2")):
    return ServingRegistry(TINY_CONFIG, artifact_dir, names=names)


class TestEvaluatorBreaker:
    def test_oracle_errors_trip_the_breaker(self, artifact_dir, faults):
        ev = BatchEvaluator(registry(artifact_dir))
        faults("oracle.error:times=10")
        for _ in range(ev.breaker.failure_threshold):
            with pytest.raises(InjectedFault):
                ev.evaluate("exp2", [0.5], level=0)  # no artifact: oracle tier
        assert ev.breaker.state == "open"
        # Open breaker: the oracle tier is shed *fast*, without even
        # reaching the injected fault.
        with pytest.raises(OracleUnavailable):
            ev.evaluate("exp2", [0.5], level=0)
        assert ev.breaker.shed >= 1

    def test_artifact_tiers_never_shed(self, artifact_dir, faults):
        ev = BatchEvaluator(registry(artifact_dir))
        faults("oracle.error:times=10")
        for _ in range(ev.breaker.failure_threshold):
            with pytest.raises(InjectedFault):
                ev.evaluate("exp2", [0.5], level=0)
        res = ev.evaluate("log2", [1.5], level=0)  # has an artifact
        assert res.bits and res.tiers[0] in ("vector", "scalar")

    def test_breaker_recovers_after_faults_clear(self, artifact_dir, faults):
        from repro.resilience.breaker import CircuitBreaker

        ev = BatchEvaluator(
            registry(artifact_dir),
            breaker=CircuitBreaker(failure_threshold=2, recovery_time=0.05),
        )
        faults("oracle.error:times=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                ev.evaluate("exp2", [0.5], level=0)
        assert ev.breaker.state == "open"
        import time

        time.sleep(0.06)
        res = ev.evaluate("exp2", [0.5], level=0)  # half-open probe succeeds
        assert res.tiers == ["oracle"]
        assert ev.breaker.state == "closed"


class TestServerBackpressure:
    def test_overloaded_returns_structured_error(self, artifact_dir):
        with ServerThread(registry(artifact_dir), max_pending=0) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                resp = client.eval("log2", [1.5], level=0)
                assert resp["ok"] is False
                assert resp["code"] == "overloaded"
                assert srv.metrics.snapshot()["overloaded"] >= 1

    def test_probes_bypass_backpressure(self, artifact_dir):
        with ServerThread(registry(artifact_dir), max_pending=0) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                assert client.ping() is True
                health = client.health()
                assert health["status"] == "ok"
                assert health["max_pending"] == 0


class TestServerDeadline:
    def test_slow_oracle_blows_the_deadline(self, artifact_dir, faults):
        faults("oracle.slow:delay=0.5")
        with ServerThread(
            registry(artifact_dir), request_deadline=0.05
        ) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                resp = client.eval("exp2", [0.5], level=0)
                assert resp["ok"] is False
                assert resp["code"] == "deadline_exceeded"
                assert srv.metrics.snapshot()["deadline_exceeded"] >= 1

    def test_fast_requests_unaffected(self, artifact_dir):
        with ServerThread(
            registry(artifact_dir), request_deadline=5.0
        ) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                resp = client.eval("log2", [1.5], level=0)
                assert resp["ok"] is True


class TestServerBreakerReporting:
    def test_health_and_stats_report_breaker_state(self, artifact_dir, faults):
        faults("oracle.error:times=10")
        with ServerThread(registry(artifact_dir)) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                threshold = srv.server.evaluator.breaker.failure_threshold
                for _ in range(threshold):
                    resp = client.eval("exp2", [0.5], level=0)
                    assert resp["ok"] is False
                resp = client.eval("exp2", [0.5], level=0)
                assert resp["ok"] is False
                assert resp["code"] == "oracle_unavailable"
                health = client.health()
                assert health["status"] == "degraded"
                assert health["breaker"]["state"] == "open"
                stats = client.stats()
                assert stats["breaker"]["trips"] >= 1
                assert stats["breaker"]["shed"] >= 1


class TestSocketDropAndReconnect:
    def test_client_reconnects_and_replays(self, artifact_dir, faults):
        faults("socket.drop:times=1")
        with ServerThread(registry(artifact_dir)) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                resp = client.eval("log2", [1.5], level=0)
                assert resp["ok"] is True
                assert client.reconnects == 1

    def test_reconnect_budget_exhaustion_raises(self, artifact_dir, faults):
        # Every request line is dropped: the bounded retry budget must
        # eventually surface a ConnectionError instead of looping.
        faults("socket.drop")
        with ServerThread(registry(artifact_dir)) as srv:
            with ServeClient(
                "127.0.0.1", srv.port, reconnect_attempts=2,
                reconnect_backoff=0.01,
            ) as client:
                with pytest.raises(ConnectionError):
                    client.eval("log2", [1.5], level=0)

    def test_reconnect_disabled_raises_immediately(self, artifact_dir, faults):
        faults("socket.drop:times=1")
        with ServerThread(registry(artifact_dir)) as srv:
            with ServeClient(
                "127.0.0.1", srv.port, reconnect_attempts=0
            ) as client:
                with pytest.raises(ConnectionError):
                    client.eval("log2", [1.5], level=0)


class TestDrain:
    def test_aclose_reports_draining(self, artifact_dir):
        async def run():
            server = ServeServer(registry(artifact_dir))
            await server.start()
            assert server.health()["status"] == "ok"
            await server.aclose()
            health = server.health()
            assert health["status"] == "draining"
            assert health["draining"] is True

        asyncio.run(run())

    def test_stop_flushes_cleanly_with_traffic(self, artifact_dir):
        srv = ServerThread(registry(artifact_dir)).start()
        client = ServeClient("127.0.0.1", srv.port)
        resps = client.eval_many(
            [{"fn": "log2", "inputs": [1.5], "level": 0}] * 8
        )
        assert all(r["ok"] for r in resps)
        client.close()
        srv.stop()
