"""Durability of the atomic writers: tmp+rename+fsync, including the
parent-directory fsync that publishes the rename itself.

A crash *during* an atomic write must leave either the old content or
the new content — never a torn file — and a crash *after* the rename
must not lose the entry (hence the directory fsync).  We cannot power-
cycle the box in CI, so these tests assert the observable contract:
every byte that lands at the final path went through a temp file, both
the temp file and the directory were fsynced, and a write abandoned
mid-flight leaves the original untouched.
"""

import json
import os

import pytest

from repro.resilience.checkpoint import (
    atomic_write_bytes,
    atomic_write_json,
    fsync_dir,
)


class TestFsyncDir:
    def test_fsyncs_an_open_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        fsync_dir(tmp_path)
        assert len(synced) == 1

    def test_missing_directory_is_a_no_op(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # must not raise

    def test_fsync_failure_is_swallowed(self, tmp_path, monkeypatch):
        def boom(fd):
            raise OSError("EINVAL: directory fsync unsupported")

        monkeypatch.setattr(os, "fsync", boom)
        fsync_dir(tmp_path)  # must not raise


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, {"a": 1}, indent=1)
        assert json.loads(path.read_text()) == {"a": 1}
        # No temp debris left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "x.bin"
        atomic_write_bytes(path, b"old-content")

        # Crash (simulated) after the temp write but before the rename:
        # the published file must still be the old content, intact.
        def torn_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", torn_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"new-content-much-longer")
        monkeypatch.undo()
        assert path.read_bytes() == b"old-content"

    def test_directory_fsynced_after_rename(self, tmp_path, monkeypatch):
        """The parent directory is fsynced *after* os.replace publishes
        the entry — the regression this file exists for."""
        events = []
        real_replace = os.replace
        real_fsync = os.fsync

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        def spy_fsync(fd):
            if os.fstat(fd).st_mode & 0o170000 == 0o040000:  # S_IFDIR
                events.append("dirsync")
            else:
                events.append("filesync")
            return real_fsync(fd)

        monkeypatch.setattr(os, "replace", spy_replace)
        monkeypatch.setattr(os, "fsync", spy_fsync)
        atomic_write_bytes(tmp_path / "x.bin", b"payload")
        assert events == ["filesync", "replace", "dirsync"]


class TestCallSites:
    def test_save_checkpoint_syncs_directory(self, tmp_path, monkeypatch):
        from repro.resilience import checkpoint as ckpt_mod

        dirs = []
        monkeypatch.setattr(
            ckpt_mod, "fsync_dir", lambda d: dirs.append(str(d))
        )
        ckpt = ckpt_mod.SearchCheckpoint(params={"fn": "log2"})
        ckpt_mod.save_checkpoint(tmp_path / "a.ckpt.json", ckpt)
        assert dirs == [str(tmp_path)]

    def test_save_generated_is_atomic(self, tmp_path, tiny_generated):
        from repro.libm.artifacts import load_generated, save_generated

        _, gen = tiny_generated("log2")
        path = save_generated(gen, tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
        again = load_generated(gen.name, gen.family_name, tmp_path)
        assert again.name == gen.name

    def test_write_table_syncs_directory(self, tmp_path, monkeypatch):
        import numpy as np

        from repro.libm import tables as tables_mod

        dirs = []
        monkeypatch.setattr(
            tables_mod, "fsync_dir", lambda d: dirs.append(str(d))
        )
        meta = {
            "family": "tiny",
            "fn": "log2",
            "format": "f8",
            "dtype": "<u4",
            "level": 0,
            "mode": "rne",
        }
        tables_mod.write_table(
            tmp_path / "t.tbl", meta, np.arange(8, dtype=np.uint32)
        )
        assert dirs == [str(tmp_path)]
