"""Pool recovery under injected failures: results stay bit-identical.

Fault specs ride the environment into fork/spawn-started workers, so
these tests exercise the *real* multi-process recovery ladder — retry
with backoff, pool respawn after a dead worker, and the in-process
fallback for poison chunks — never mocks.
"""

import pytest

from repro.core import generate_function
from repro.fp import IEEE_MODES, T8
from repro.funcs import TINY_CONFIG, make_pipeline
from repro.libm.baselines import GeneratedLibrary
from repro.mp import Oracle
from repro.parallel.pool import start_method
from repro.verify import verify_exhaustive


def _fingerprint(gen):
    return (
        [p.poly.coefficients for p in gen.pieces],
        [p.poly.term_counts for p in gen.pieces],
        [p.r_max for p in gen.pieces],
        sorted(gen.specials.items()),
        gen.stats.constraints,
    )


@pytest.fixture(scope="module")
def clean_log2():
    """Fault-free reference generation (serial: no pool involved)."""
    return generate_function(make_pipeline("log2", TINY_CONFIG, Oracle()))


class TestGenerationRecovery:
    def test_sporadic_worker_crashes_recover(self, faults, clean_log2):
        # Each (re)spawned worker crashes on ~40% of its chunk pickups,
        # at most twice per process; retries + respawns must converge.
        faults("worker.crash:p=0.4,seed=3,times=2")
        gen = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=2
        )
        assert _fingerprint(gen) == _fingerprint(clean_log2)

    def test_poison_chunks_fall_back_in_process(
        self, faults, clean_log2, monkeypatch
    ):
        # Every worker dies on every chunk: nothing can succeed in the
        # pool, so every chunk must be computed by the parent's serial
        # fallback — and the merge must still be bit-identical.
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        faults("worker.crash")
        gen = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=2
        )
        assert _fingerprint(gen) == _fingerprint(clean_log2)

    def test_chunk_timeouts_recover(self, faults, clean_log2, monkeypatch):
        # Workers stall well past the (shrunken) per-chunk deadline on
        # their first chunk only; later chunks are fast.
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "0.5")
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        faults("chunk.slow:delay=3.0,times=1")
        gen = generate_function(
            make_pipeline("log2", TINY_CONFIG, Oracle()), jobs=2
        )
        assert _fingerprint(gen) == _fingerprint(clean_log2)


class TestVerifyRecovery:
    def test_verify_matches_serial_under_crashes(self, faults, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        gen = generate_function(pipe)
        lib = GeneratedLibrary({"exp2": pipe}, {"exp2": gen}, label="rlibm-prog")
        serial = verify_exhaustive(lib, "exp2", T8, 0, oracle, IEEE_MODES)
        faults("worker.crash:p=0.4,seed=9,times=2")
        sharded = verify_exhaustive(
            lib, "exp2", T8, 0, Oracle(), IEEE_MODES, jobs=3
        )
        assert (sharded.total_checks, sharded.wrong) == (
            serial.total_checks, serial.wrong,
        )
        assert sharded.by_mode == serial.by_mode
        assert [
            (f.input_bits, f.mode, f.got_bits, f.want_bits)
            for f in sharded.failures
        ] == [
            (f.input_bits, f.mode, f.got_bits, f.want_bits)
            for f in serial.failures
        ]


class TestStartMethodValidation:
    def test_invalid_override_raises_with_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "bogus")
        with pytest.raises(ValueError, match=r"REPRO_MP_START='bogus'.*choose from"):
            start_method()

    def test_valid_override_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert start_method() == "spawn"

    def test_default_without_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        assert start_method() in ("fork", "spawn")
