"""The headline chaos test: a full generate -> verify -> serve round trip
under a combined fault storm must produce artifacts and answers
bit-identical to a fault-free run.
"""

import pytest

from repro import api
from repro.funcs import TINY_CONFIG
from repro.resilience.faults import InjectedFault
from repro.serve import ServeClient, ServerThread, ServingRegistry

#: Everything at once: sporadic worker deaths, stalls, one mid-search
#: crash (recovered via --resume), a failing cache flush, and a dropped
#: client connection.  Seeds are fixed so the storm is reproducible.
CHAOS = (
    "worker.crash:p=0.3,seed=11,times=2;"
    "chunk.slow:p=0.2,seed=12,delay=0.05;"
    "search.crash:times=1;"
    "cache.flush:times=1;"
    "socket.drop:times=1"
)


class TestChaosRoundTrip:
    def test_roundtrip_bit_identical(self, tmp_path, faults, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")

        # --- fault-free reference ------------------------------------
        ref_dir = tmp_path / "ref"
        _, ref_path = api.generate("log2", TINY_CONFIG, out_dir=ref_dir)
        ref_eval = api.evaluate(
            "log2", [1.0, 1.5, 2.0], TINY_CONFIG, level=0, directory=ref_dir
        )

        # --- chaos run ------------------------------------------------
        faults(CHAOS)
        run_dir = tmp_path / "run"
        cache = tmp_path / "oracle.sqlite"

        # generate: dies once at the injected search.crash, resumes.
        with pytest.raises(InjectedFault):
            api.generate(
                "log2", TINY_CONFIG, out_dir=run_dir, jobs=2,
            )
        with api.oracle_session(cache) as oracle:
            _, path = api.generate(
                "log2", TINY_CONFIG, out_dir=run_dir, jobs=2,
                oracle=oracle, resume=True,
            )
        assert path.read_bytes() == ref_path.read_bytes()

        # verify: sharded sweep under the same worker faults.
        reports = api.verify(
            "log2", TINY_CONFIG, directory=run_dir, jobs=2, levels=(0,)
        )
        assert all(rep.wrong == 0 for rep in reports)

        # serve: the socket.drop fault severs the first request; the
        # client reconnects and the answers still match the reference.
        reg = ServingRegistry(TINY_CONFIG, run_dir, names=("log2",))
        with ServerThread(reg) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                resp = client.eval("log2", [1.0, 1.5, 2.0], level=0)
        assert resp["ok"] is True
        assert resp["bits"] == ref_eval.bits
