"""Cross-module integration: determinism, corruption detection, round trips."""

import json

import pytest

from repro.core import evaluate_generated, generate_function
from repro.fp import IEEE_MODES, T8, all_finite
from repro.funcs import TINY_CONFIG, make_pipeline
from repro.libm.artifacts import generated_from_dict, generated_to_dict
from repro.libm.baselines import GeneratedLibrary
from repro.verify import verify_exhaustive


class TestDeterminism:
    def test_same_seed_same_polynomial(self, oracle):
        pipe = make_pipeline("exp2", TINY_CONFIG, oracle)
        a = generate_function(pipe, seed=7)
        b = generate_function(pipe, seed=7)
        assert a.num_pieces == b.num_pieces
        for pa, pb in zip(a.pieces, b.pieces):
            assert pa.poly.coefficients == pb.poly.coefficients
            assert pa.poly.term_counts == pb.poly.term_counts
        assert a.specials == b.specials

    def test_different_seeds_both_correct(self, oracle):
        pipe = make_pipeline("log2", TINY_CONFIG, oracle)
        for seed in (1, 2):
            gen = generate_function(pipe, seed=seed)
            lib = GeneratedLibrary({"log2": pipe}, {"log2": gen})
            rep = verify_exhaustive(lib, "log2", T8, 0, oracle, IEEE_MODES)
            assert rep.all_correct, seed


class TestFailureInjection:
    """A corrupted artifact must be *caught*, not silently accepted."""

    def _corrupt(self, gen, bump):
        data = generated_to_dict(gen)
        c0 = data["pieces"][0]["coefficients"][0]
        num, den = c0[0].split("/")
        c0[0] = f"{int(num) + bump}/{den}"
        return generated_from_dict(json.loads(json.dumps(data)))

    def test_coefficient_corruption_detected(self, oracle, tiny_generated):
        pipe, gen = tiny_generated("exp2")
        # Bump the constant coefficient by ~2^-9 relative: large enough to
        # break correct rounding somewhere, small enough to look plausible.
        c = gen.pieces[0].poly.coefficients[0][0]
        bump = max(1, abs(c.numerator) >> 9)
        bad = self._corrupt(gen, bump)
        lib = GeneratedLibrary({"exp2": pipe}, {"exp2": bad})
        rep = verify_exhaustive(lib, "exp2", T8, 0, oracle, IEEE_MODES)
        assert not rep.all_correct
        assert rep.failures

    def test_dropped_special_detected(self, oracle, tiny_generated):
        pipe, gen = tiny_generated("sinpi")
        if not gen.specials:
            pytest.skip("no stored specials for this seed")
        data = generated_to_dict(gen)
        data["specials"] = []
        bad = generated_from_dict(data)
        lib = GeneratedLibrary({"sinpi": pipe}, {"sinpi": bad})
        wrong = 0
        for fmt, level in ((T8, 0),):
            rep = verify_exhaustive(lib, "sinpi", fmt, level, oracle, IEEE_MODES)
            wrong += rep.wrong
        # The stored specials exist precisely because the polynomial alone
        # is wrong there (on some level of the family).
        from repro.fp import T10

        rep10 = verify_exhaustive(lib, "sinpi", T10, 1, oracle, IEEE_MODES)
        assert wrong + rep10.wrong > 0


class TestCrossFamilyIsolation:
    def test_same_function_two_families(self, oracle, tiny_generated):
        """Artifacts are family-specific; evaluating with the wrong
        family's pipeline must not silently work."""
        from repro.funcs import FamilyConfig
        from repro.fp import FPFormat

        pipe_tiny, gen_tiny = tiny_generated("exp2")
        other = FamilyConfig(
            (FPFormat(9, 4), FPFormat(11, 4)),
            log_table_bits=3, exp_table_bits=4, trig_table_bits=5,
            name="other",
        )
        pipe_other = make_pipeline("exp2", other, oracle)
        gen_other = generate_function(pipe_other)
        # Each library verifies against its own family.
        lib = GeneratedLibrary({"exp2": pipe_other}, {"exp2": gen_other})
        rep = verify_exhaustive(
            lib, "exp2", other.formats[0], 0, oracle, IEEE_MODES
        )
        assert rep.all_correct
        # The tiny artifact's reduced-input domain differs (different J2):
        # its polynomial is not interchangeable.
        assert (
            pipe_other.table_bits != pipe_tiny.table_bits
            or gen_other.pieces[0].poly.coefficients
            != gen_tiny.pieces[0].poly.coefficients
        )


class TestScalarVectorCodegenAgreement:
    """One input sweep, three runtimes (scalar / numpy / C) — all equal.

    The scalar-vs-numpy and scalar-vs-C pairs are covered separately in
    the libm tests; this glues all three on a shared artifact, including
    special inputs.
    """

    def test_three_runtimes_agree(self, oracle, tiny_generated, tmp_path):
        import shutil
        import numpy as np

        from repro.libm.vectorized import VectorizedFunction

        pipe, gen = tiny_generated("log2")
        xs = [v.to_float() for v in all_finite(T8)]
        scalar = [evaluate_generated(pipe, gen, x, 0) for x in xs]
        vec = VectorizedFunction(pipe, gen)(np.array(xs), 0)
        for s, v in zip(scalar, vec):
            assert s == v or (s != s and v != v)
        if shutil.which("gcc"):
            from repro.libm.codegen import emit_selftest
            import subprocess

            src = tmp_path / "t.c"
            exe = tmp_path / "t"
            src.write_text(
                emit_selftest(pipe, gen, xs, [
                    scalar,
                    [evaluate_generated(pipe, gen, x, 1) for x in xs],
                ])
            )
            subprocess.run(
                ["gcc", "-O2", "-std=c99", str(src), "-o", str(exe), "-lm"],
                check=True,
            )
            out = subprocess.run([str(exe)], capture_output=True, text=True)
            assert out.returncode == 0
