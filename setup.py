"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package (offline environments where PEP 660 editable builds are
unavailable).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
